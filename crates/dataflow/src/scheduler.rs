//! The event-driven DAG scheduler: one shared driver service per context.
//!
//! An action builds an explicit stage graph from the lineage of its target
//! RDD: one *map stage* per shuffle dependency plus one *result stage*,
//! with parent/child edges wherever a stage reads a shuffle's output. The
//! job is then handed to the context's `SchedulerService` — a single
//! long-lived driver loop that multiplexes events from *all* concurrent
//! jobs over one tagged channel ([`crate::sync::channel::MuxSender`]),
//! keeping per-job state in a `HashMap<job_id, JobRun>`. The caller blocks
//! on a `JobHandle` until the service resolves the job, so the public
//! [`run_job`] API (and every action lowered onto it) is unchanged from
//! the per-job-loop days while the driver side now scales to many jobs
//! without one event-loop thread per action.
//!
//! Jobs carry a *priority* (see `SpangleContext::run_with_priority`;
//! the default pool is FIFO at priority 0): ready tasks are submitted to
//! the executors tagged with their job's priority, and each executor
//! serves its queue highest-priority-first, so a high-priority job's tasks
//! overtake queued lower-priority work instead of waiting out the
//! submission interleaving. Every [`JobReport`] records the job's summed
//! task queue-wait time, which is where that fairness is observable.
//!
//! In front of the running-job map sits an *admission controller*
//! (`SpangleContextBuilder::max_concurrent_jobs` and friends): a job that
//! arrives while the scheduler is saturated — job slots full, with
//! capacity scaled down while replacement executors warm up after a kill,
//! or resident cache + shuffle memory at the configured high watermark —
//! is *queued* (FIFO within its priority, released as capacity frees),
//! or *shed* with [`JobOutcome::Rejected`] when its priority falls below
//! the shed threshold or its tasks overflow the per-priority queue bound.
//! Jobs submitted under `SpangleContext::run_with_deadline` carry an
//! absolute deadline; the driver wakes on a timer and resolves an expired
//! job as [`JobOutcome::Deadlined`] — never admitting a queued one,
//! aborting a running one through the normal abandon path. [`submit_job`]
//! exposes the non-blocking half of this: it returns a [`JobHandle`]
//! immediately, so callers can poll (`try_wait`, `wait_timeout`) instead
//! of blocking while their job waits out the queue. Every decision is
//! observable: `jobs_rejected`, `jobs_deadlined`, admission queue wait
//! and peak-depth counters, and memory high-water marks all land in the
//! context metrics and each [`JobReport`].
//!
//! Stage activation is demand-driven and race-free: a map stage first
//! [`ShuffleService::try_claim`]s its shuffle. Exactly one job becomes the
//! owner and runs the stage; a job that finds the shuffle `Completed`
//! skips the stage (Spark's skipped-stage reuse, without even visiting its
//! ancestors), and a job that finds it `InFlight` treats the stage as
//! *external*, registering a completion callback on the shuffle service
//! ([`ShuffleService::subscribe`]) that posts an event into the shared
//! loop tagged with the waiting job's id. No thread is ever parked on an
//! awaited shuffle — stage readiness is event-driven end to end, and an
//! aborting owner wakes its externals immediately instead of leaking
//! parked waiters.
//!
//! Tasks are *placed* on the executor owning their partition but may be
//! stolen by an idle sibling (see [`crate::executor`]); stolen attempts
//! are charged as remote in the job's [`StageReport::tasks_stolen`] and
//! the per-executor busy times recorded in each [`JobReport`].
//!
//! Failure semantics: failed task attempts retry up to the context's limit
//! with lineage recomputation, and an exhausted task aborts the whole job.
//! Whole-executor loss is a separate, budgeted path: an attempt that died
//! with its executor ([`TaskError::ExecutorLost`]) replays on the
//! replacement without charging its attempt budget, and a reduce attempt
//! that finds a parent shuffle block gone ([`TaskError::FetchFailed`]) is
//! *parked* while the scheduler claims the shuffle's recovery
//! ([`ShuffleService::claim_recovery`]) and re-runs exactly the missing
//! map partitions from lineage — surviving map output is reused, never
//! recomputed. Both paths draw on one per-job resubmission budget
//! (`SpangleContextBuilder::max_resubmissions`) so a permanently poisoned
//! shuffle aborts cleanly instead of looping.
//! On abort every shuffle the job still owns is abandoned (dropping its
//! partial map output) so concurrent or subsequent jobs can re-claim it —
//! an abort never wedges the cluster — and the aborted job still records a
//! [`JobReport`] with [`JobOutcome::Aborted`], its in-flight stages marked
//! [`StageOutcome::Aborted`], so no busy/steal accounting is lost.
//!
//! Tasks must never trigger nested actions: all actions run on driver
//! (user) threads, tasks run on executor threads, and the service loop
//! runs only scheduler state transitions (never user code).
//!
//! [`ShuffleService::try_claim`]: crate::shuffle::ShuffleService::try_claim
//! [`ShuffleService::subscribe`]: crate::shuffle::ShuffleService::subscribe
//! [`ShuffleService::claim_recovery`]: crate::shuffle::ShuffleService::claim_recovery
//! [`JobOutcome::Aborted`]: crate::metrics::JobOutcome::Aborted
//! [`JobOutcome::Rejected`]: crate::metrics::JobOutcome::Rejected
//! [`JobOutcome::Deadlined`]: crate::metrics::JobOutcome::Deadlined
//! [`StageOutcome::Aborted`]: crate::metrics::StageOutcome::Aborted

use crate::context::SpangleContext;
use crate::executor::{
    cancellation_point, is_task_cancelled, stamp_heartbeat_only, BlockOrigin, CancelToken,
    CancelledError, TaskInfo, TaskTag,
};
use crate::failure::TaskSite;
use crate::health::{jittered_backoff, splitmix64, HealthBoard, STATE_HEALTHY};
use crate::metrics::{JobOutcome, JobReport, MetricField, StageOutcome, StageReport};
use crate::plan;
use crate::rdd::pair::ShuffleDepDyn;
use crate::rdd::{Dependency, LineageNode, Rdd};
use crate::shuffle::{FetchFailedError, RecoveryClaim, ShuffleClaim};
use crate::sync::channel::{
    unbounded, MuxSender, Receiver, RecvTimeoutError, Sender, Tagged, TryRecvError,
};
use crate::sync::{Mutex, PriorityFifo};
use crate::Data;
use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Information available to a running task.
#[derive(Clone, Copy, Debug)]
pub struct TaskContext {
    /// Job the task belongs to.
    pub job_id: usize,
    /// Stage the task belongs to.
    pub stage_id: usize,
    /// Partition the task computes.
    pub partition: usize,
    /// Zero-based attempt number (>0 on retries).
    pub attempt: usize,
    /// Executor the attempt is running on (known only once the attempt
    /// starts, so the context is built on the executor, not at
    /// submission).
    pub executor: usize,
    /// Incarnation of that executor (see [`crate::executor::BlockOrigin`]):
    /// blocks the task deposits are attributed to this incarnation and die
    /// with it.
    pub epoch: u64,
}

impl TaskContext {
    /// The block origin for everything this attempt produces.
    pub(crate) fn origin(&self) -> BlockOrigin {
        BlockOrigin::executor(self.executor, self.epoch)
    }
}

/// When the driver launches speculative duplicates for tail tasks; built
/// by `SpangleContext::builder().speculation(..)` and immutable for the
/// context's lifetime.
///
/// While a stage runs, the driver keeps the durations of its completed
/// task attempts. A still-running original attempt whose elapsed time
/// exceeds `multiplier` × the stage's median completed duration (and the
/// `min_runtime` floor) gets a duplicate attempt on the least-loaded
/// *other* executor. The first completion wins the partition — its output
/// lands atomically in the shuffle registry — and the slower twin is
/// cancelled through its [`CancelToken`]; neither side charges the
/// per-task attempt budget.
#[derive(Clone, Copy, Debug)]
pub struct SpeculationConfig {
    /// Whether speculative duplicates are launched at all.
    pub enabled: bool,
    /// A running attempt becomes a candidate once its elapsed time exceeds
    /// this multiple of the stage's median completed-task duration.
    pub multiplier: f64,
    /// Elapsed-time floor below which no attempt is duplicated, whatever
    /// the median says — very short stages must not breed duplicates over
    /// scheduling noise.
    pub min_runtime: Duration,
}

impl Default for SpeculationConfig {
    /// Speculation on, at 4× the stage median with a 10 ms floor. Setting
    /// the `SPANGLE_DISABLE_SPECULATION` environment variable (to anything
    /// but `0`) flips `enabled` off — the lever the CI matrix uses to keep
    /// the non-speculative path tested. Explicit builder calls always win
    /// over the environment.
    fn default() -> Self {
        let disabled = std::env::var_os("SPANGLE_DISABLE_SPECULATION").is_some_and(|v| v != "0");
        SpeculationConfig {
            enabled: !disabled,
            multiplier: 4.0,
            min_runtime: Duration::from_millis(10),
        }
    }
}

/// Why one task attempt failed.
#[derive(Clone, Debug)]
pub enum TaskError {
    /// The failure injector killed this attempt.
    Injected,
    /// User code panicked.
    Panicked(String),
    /// The executor the attempt ran on was killed before the attempt
    /// finished; the attempt's output was discarded with the executor and
    /// the task is replayed without charging its attempt budget.
    ExecutorLost {
        /// Slot of the lost executor.
        executor: usize,
    },
    /// A reduce-side fetch found a parent shuffle block that was lost with
    /// its executor. The scheduler re-runs the missing map partitions from
    /// lineage and then replays this attempt, again without charging its
    /// attempt budget.
    FetchFailed {
        /// Shuffle whose map output is gone.
        shuffle_id: usize,
        /// Map partition whose output is missing.
        map_id: usize,
    },
    /// The attempt was interrupted at a cancellation point: the driver
    /// cancelled its [`CancelToken`] (a lost speculation race, a job
    /// abort, or an expired deadline) or its executor was killed while the
    /// body ran. Never charges the per-task attempt budget — the
    /// interruption was the scheduler's own doing.
    Cancelled,
    /// The executor pool shut down while the job was running.
    ExecutorShutdown,
    /// Admission control shed the job before any of its tasks ran: the
    /// scheduler was saturated and the job's priority fell below the shed
    /// threshold (or its tasks did not fit the per-priority queue bound).
    Rejected,
    /// The job's deadline (`SpangleContext::run_with_deadline`) elapsed
    /// before it finished; it was aborted (or never admitted).
    DeadlineExceeded,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Injected => write!(f, "injected failure"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::ExecutorLost { executor } => {
                write!(f, "executor {executor} was lost mid-attempt")
            }
            TaskError::FetchFailed { shuffle_id, map_id } => write!(
                f,
                "fetch failed: map output {map_id} of shuffle {shuffle_id} was lost"
            ),
            TaskError::Cancelled => write!(f, "attempt cancelled at a cancellation point"),
            TaskError::ExecutorShutdown => write!(f, "executor pool shut down"),
            TaskError::Rejected => write!(f, "shed by admission control (scheduler saturated)"),
            TaskError::DeadlineExceeded => write!(f, "job deadline exceeded"),
        }
    }
}

/// A job failed: some task exhausted its attempts (or the cluster went
/// away underneath it).
#[derive(Clone, Debug)]
pub struct JobError {
    /// Job that aborted.
    pub job_id: usize,
    /// Stage of the failing task.
    pub stage_id: usize,
    /// Partition of the failing task.
    pub partition: usize,
    /// Attempts made.
    pub attempts: usize,
    /// The final attempt's error.
    pub last_error: TaskError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} aborted: stage {} partition {} failed after {} attempts: {}",
            self.job_id, self.stage_id, self.partition, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for JobError {}

/// Lifecycle of one stage inside one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StageState {
    /// Not reached by activation yet.
    Idle,
    /// This job owns the stage and is waiting on `waiting_on` parents.
    Waiting,
    /// Another job is running the stage; a completion callback will post
    /// back into the shared loop when it resolves.
    External,
    /// Tasks submitted, `remaining` still outstanding.
    Running,
    /// All tasks done (and the shuffle, if any, marked complete).
    Finished,
    /// Satisfied without running: the shuffle output already existed.
    Skipped,
}

/// A partition result in type-erased form. The shared service drives every
/// job through one channel, so result values cross it untyped and
/// [`run_job`] downcasts them back on the caller's side.
type ErasedResult = Box<dyn Any + Send>;

/// Task body of a stage: map stages write shuffle blocks and yield `None`,
/// the result stage yields `Some` type-erased partition result.
type StageWork = Arc<dyn Fn(&TaskContext) -> Option<ErasedResult> + Send + Sync>;

/// One live task attempt of a running stage, tracked for speculation and
/// cancellation. A partition has at most two: the original and one
/// speculative duplicate racing it.
struct Attempt {
    /// Attempt number shared by both sides of a speculation race.
    attempt: usize,
    /// Whether this is the duplicate side of the race.
    speculative: bool,
    /// Whether the attempt was submitted as a singleton executor task.
    /// Coalesced groups share one body (and one token) across partitions,
    /// so duplicating a single partition out of one is not possible —
    /// only singletons are speculation candidates.
    singleton: bool,
    /// Cancels the attempt's body at its next cancellation point.
    /// Doubles as the attempt's identity against the pool's running
    /// slots: the speculation scan locates where (and since when) the
    /// attempt's body has actually been executing by this token, so
    /// queue time never counts toward the straggler threshold.
    token: CancelToken,
}

/// One node of the job's stage graph.
struct Stage {
    /// The shuffle this map stage feeds; `None` for the result stage.
    shuffle_id: Option<usize>,
    work: StageWork,
    /// Stage indices this stage reads shuffle output from.
    parents: Vec<usize>,
    /// Stage indices that read this stage's shuffle output.
    children: Vec<usize>,
    num_tasks: usize,
    /// RDD id used as the failure-injection site for this stage's tasks.
    site_rdd: usize,
    state: StageState,
    /// Context-wide stage id, allocated when the stage is scheduled.
    stage_id: usize,
    /// Unsatisfied parents (only meaningful in `Waiting`).
    waiting_on: usize,
    /// Outstanding tasks (only meaningful in `Running`).
    remaining: usize,
    /// Summed task CPU time over all attempts.
    task_nanos: u64,
    /// Attempts that ran on a non-home executor (work stealing).
    tasks_stolen: usize,
    started: Option<Instant>,
    /// Attempts parked on a fetch failure as `(partition, attempt,
    /// parent_shuffle_id)`: still counted in `remaining`, replayed (same
    /// attempt number) once the parent shuffle's lost maps are rebuilt.
    pending_retry: Vec<(usize, usize, usize)>,
    /// Fetch failures observed by this stage's attempts in its current run.
    fetch_failures: usize,
    /// Map partitions this stage recomputed in its current run (non-zero
    /// only for recovery re-runs).
    recovered_maps: usize,
    /// Narrow operator chains the planner collapsed into this stage's
    /// fused task bodies (see [`plan::analyze_stages`]).
    fused_chains: usize,
    /// Shuffle edges rewritten to narrow pass-throughs that this stage
    /// executes locally instead of through the shuffle service.
    elided_shuffles: usize,
    /// Reduce partitions merged into shared task groups in this stage's
    /// current run (`num_tasks` minus scheduled task groups).
    partitions_coalesced: usize,
    /// Live attempts of this stage's current run, keyed by partition.
    inflight: HashMap<usize, Vec<Attempt>>,
    /// Completed-attempt durations (nanoseconds) of the current run; the
    /// speculation scan compares stragglers against their median.
    durations: Vec<u64>,
    /// Partitions already settled by their first completion. Later sibling
    /// events (the cancelled half of a speculation race) are losers: their
    /// time is accounted, nothing else.
    finished: HashSet<usize>,
    /// Speculative duplicates launched in this stage's current run.
    tasks_speculated: usize,
    /// Duplicates that completed before the original they raced.
    speculation_wins: usize,
    /// Attempts of this stage cancelled through their token.
    tasks_cancelled: usize,
    /// No-progress watchdog trips in this stage's current run: attempts
    /// whose executor kept heartbeating while their progress counter froze,
    /// duplicated through the speculation path.
    watchdog_trips: usize,
    /// Nanoseconds of scheduled retry backoff charged to this stage's
    /// current run (delays are scheduled on the driver's timer, so this is
    /// planned delay, not thread sleep).
    backoff_nanos: u64,
    /// Context-wide (blocks_spilled, blocks_rehydrated, spill_bytes)
    /// counters captured when this stage's current run was submitted; the
    /// stage report carries the delta observed while it ran.
    spill_baseline: (u64, u64, u64),
}

/// Everything that flows into the shared driver loop. Each message arrives
/// wrapped in [`Tagged`] with the job id it belongs to, so one channel
/// serves every concurrent job.
enum ServiceEvent {
    /// A new job entering the loop (tag = its job id).
    Submit(Box<JobRun>),
    /// A task attempt finished (successfully or not).
    Task {
        stage_idx: usize,
        partition: usize,
        attempt: usize,
        /// Task-body CPU time.
        nanos: u64,
        /// Time the attempt spent queued on the executor before starting.
        wait_nanos: u64,
        /// Executor the attempt actually ran on.
        ran_on: usize,
        /// Whether the attempt was stolen from its placed executor.
        stolen: bool,
        /// Whether this was the duplicate side of a speculation race.
        speculative: bool,
        outcome: Result<Option<ErasedResult>, TaskError>,
    },
    /// An external (other-job) map stage finished: `completed` says
    /// whether its owner completed it or abandoned it.
    External { stage_idx: usize, completed: bool },
    /// Context teardown: exit the loop after failing any stragglers.
    Shutdown,
}

thread_local! {
    /// Priority stamped on jobs submitted from this driver thread; scoped
    /// by [`with_job_priority`] (`SpangleContext::run_with_priority`).
    static JOB_PRIORITY: Cell<i32> = const { Cell::new(0) };
    /// Deadline stamped on jobs submitted from this driver thread; scoped
    /// by [`with_job_deadline`] (`SpangleContext::run_with_deadline`).
    static JOB_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Runs `f` with every job submitted from this thread carrying `priority`
/// (higher is served first; the default pool is 0). The previous priority
/// is restored on exit, panic included, so nested scopes compose.
pub(crate) fn with_job_priority<O>(priority: i32, f: impl FnOnce() -> O) -> O {
    struct Restore(i32);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOB_PRIORITY.set(self.0);
        }
    }
    let _restore = Restore(JOB_PRIORITY.replace(priority));
    f()
}

/// Runs `f` with every job submitted from this thread carrying a deadline
/// of now + `budget`. A job whose deadline elapses before it completes is
/// resolved as [`JobOutcome::Deadlined`]: if it was still queued for
/// admission it never runs at all, and if it was running it is aborted
/// through the normal abandon path (owned shuffles released, stragglers'
/// deposits reclaimed by lineage GC). The previous deadline is restored on
/// exit, panic included, so nested scopes compose (the inner, tighter
/// budget wins while it is in scope).
pub(crate) fn with_job_deadline<O>(budget: Duration, f: impl FnOnce() -> O) -> O {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOB_DEADLINE.set(self.0);
        }
    }
    let _restore = Restore(JOB_DEADLINE.replace(Some(Instant::now() + budget)));
    f()
}

/// Runs `func` over every partition of `rdd`, returning one result per
/// partition in partition order. This is the single entry point every
/// action lowers to: it plans the stage graph, hands the job to the
/// context's shared `SchedulerService` via [`submit_job`], and blocks on
/// the returned [`JobHandle`] until the service resolves it.
pub fn run_job<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> Result<Vec<R>, JobError> {
    submit_job(rdd, func).wait()
}

/// Submits a job without blocking: plans the stage graph, stamps the
/// calling thread's priority and deadline scopes on it, and hands it to
/// the shared service's admission controller. The returned [`JobHandle`]
/// resolves when the service finishes, aborts, sheds, or deadlines the
/// job — poll it with [`JobHandle::try_wait`] / [`JobHandle::wait_timeout`]
/// or block on [`JobHandle::wait`].
pub fn submit_job<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> JobHandle<R> {
    let ctx = rdd.context().clone();
    let job_id = ctx.new_job_id();
    let priority = JOB_PRIORITY.get();
    let deadline = JOB_DEADLINE.get();

    let stages = build_stages(rdd, func);
    let result_idx = stages.len() - 1;
    let num_results = stages[result_idx].num_tasks;

    let (handle, done) = JobHandle::new(job_id);
    let num_executors = ctx.num_executors();
    let tx = ctx.inner.scheduler.sender(job_id);
    let run = Box::new(JobRun {
        ctx: ctx.clone(),
        job_id,
        priority,
        deadline,
        stages,
        result_idx,
        tx,
        owned: HashSet::new(),
        running: 0,
        max_concurrent: 0,
        executor_busy: vec![0; num_executors],
        queue_wait_nanos: 0,
        admission_queued_at: None,
        admission_wait_nanos: 0,
        resubmissions_left: ctx.inner.max_resubmissions,
        delayed: Vec::new(),
        backoff_strikes: HashMap::new(),
        reports: Vec::new(),
        results: std::iter::repeat_with(|| None).take(num_results).collect(),
        done,
        started: Instant::now(),
    });
    if let Err(run) = ctx.inner.scheduler.submit(run) {
        // The context is tearing down around this call; resolve the handle
        // like a job that lost its cluster (this also records its report).
        let err = JobError {
            job_id,
            stage_id: 0,
            partition: 0,
            attempts: 0,
            last_error: TaskError::ExecutorShutdown,
        };
        run.fail(err);
    }
    handle
}

/// The caller-side half of one submitted job: resolves exactly once, when
/// the shared service finishes, aborts, sheds, or deadlines the job. The
/// job's [`JobReport`] is recorded *before* the handle resolves, so
/// `last_job_report()` observed after a wait always covers this job —
/// aborted, rejected, and deadlined ones included.
pub struct JobHandle<R> {
    job_id: usize,
    done: Receiver<Result<Vec<ErasedResult>, JobError>>,
    resolved: bool,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<R: Send + 'static> JobHandle<R> {
    fn new(job_id: usize) -> (Self, Sender<Result<Vec<ErasedResult>, JobError>>) {
        let (tx, rx) = unbounded();
        (
            JobHandle {
                job_id,
                done: rx,
                resolved: false,
                _result: std::marker::PhantomData,
            },
            tx,
        )
    }

    /// Id of the submitted job.
    pub fn job_id(&self) -> usize {
        self.job_id
    }

    fn decode(&mut self, outcome: Result<Vec<ErasedResult>, JobError>) -> Result<Vec<R>, JobError> {
        self.resolved = true;
        outcome.map(|results| {
            results
                .into_iter()
                .map(|r| {
                    *r.downcast::<R>()
                        .expect("job result stage produced a foreign result type")
                })
                .collect()
        })
    }

    fn service_gone(&mut self) -> JobError {
        self.resolved = true;
        JobError {
            job_id: self.job_id,
            stage_id: 0,
            partition: 0,
            attempts: 0,
            last_error: TaskError::ExecutorShutdown,
        }
    }

    /// Blocks until the service resolves the job. Consumes the handle; a
    /// handle whose result was already taken by `try_wait`/`wait_timeout`
    /// resolves as [`TaskError::ExecutorShutdown`].
    pub fn wait(mut self) -> Result<Vec<R>, JobError> {
        match self.done.recv() {
            Ok(outcome) => self.decode(outcome),
            Err(_) => Err(self.service_gone()),
        }
    }

    /// Non-blocking poll: `None` while the job is still queued or running
    /// (or after the result was already taken), `Some` exactly once when
    /// it resolves.
    pub fn try_wait(&mut self) -> Option<Result<Vec<R>, JobError>> {
        if self.resolved {
            return None;
        }
        match self.done.try_recv() {
            Ok(outcome) => Some(self.decode(outcome)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(self.service_gone())),
        }
    }

    /// Blocks up to `timeout` for the job to resolve; `None` on timeout
    /// (the job keeps running — this does *not* impose a deadline, see
    /// `SpangleContext::run_with_deadline` for that).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<Vec<R>, JobError>> {
        if self.resolved {
            return None;
        }
        match self.done.recv_timeout(timeout) {
            Ok(outcome) => Some(self.decode(outcome)),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(self.service_gone())),
        }
    }
}

/// The shared driver service: one long-lived `spangle-driver` thread
/// multiplexing every concurrent job of a context over a single tagged
/// event channel, with per-job [`JobRun`] state keyed by job id.
///
/// Owned by the context; dropping the context shuts the loop down and
/// joins the thread. Events for a job that already left the map (an
/// aborted job's straggler tasks, a completion callback that lost a race)
/// are dropped exactly as the old per-job loops dropped them on a closed
/// channel.
pub(crate) struct SchedulerService {
    tx: Sender<Tagged<ServiceEvent>>,
    driver: Mutex<Option<JoinHandle<()>>>,
}

impl SchedulerService {
    /// Spawns the driver loop.
    pub(crate) fn new() -> Self {
        let (tx, rx) = unbounded();
        let driver = std::thread::Builder::new()
            .name("spangle-driver".to_string())
            .spawn(move || drive_loop(rx))
            .expect("failed to spawn the scheduler driver thread");
        SchedulerService {
            tx,
            driver: Mutex::new(Some(driver)),
        }
    }

    /// A sender that stamps `job_id` on every event: handed to the job's
    /// tasks and shuffle subscriptions so they post into the shared loop.
    fn sender(&self, job_id: usize) -> MuxSender<ServiceEvent> {
        MuxSender::new(self.tx.clone(), job_id)
    }

    /// Hands a job to the driver loop. Fails only when the loop is gone
    /// (context teardown racing the submission), returning the job so the
    /// caller can resolve its handle.
    fn submit(&self, job: Box<JobRun>) -> Result<(), Box<JobRun>> {
        let tag = job.job_id;
        self.tx
            .send(Tagged {
                tag,
                msg: ServiceEvent::Submit(job),
            })
            .map_err(|rejected| match rejected.0.msg {
                ServiceEvent::Submit(job) => job,
                _ => unreachable!("submit sends only Submit events"),
            })
    }

    /// Stops the driver loop and joins its thread. Idempotent.
    ///
    /// The driver itself can end up here: a finished [`JobRun`] holds a
    /// context clone, and if the caller drops its context the instant its
    /// handle resolves, the driver's clone is the last one — dropping it
    /// (inside the loop) tears the service down from the driver thread.
    /// Joining yourself deadlocks, so that path detaches instead: the
    /// loop is already draining toward the `Shutdown` event just sent and
    /// exits on its own.
    pub(crate) fn shutdown(&self) {
        let _ = self.tx.send(Tagged {
            tag: usize::MAX,
            msg: ServiceEvent::Shutdown,
        });
        if let Some(handle) = self.driver.lock().take() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for SchedulerService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How often the driver polls while jobs wait in the admission queue.
/// Two admission inputs change without generating a driver event: memory
/// freed by out-of-loop RDD drops/evictions, and a warming replacement
/// executor completing its first task. The poll picks those up.
const ADMISSION_POLL: Duration = Duration::from_millis(5);

/// Gatekeeper in front of the driver's running-job map: holds jobs the
/// context's [`crate::context::AdmissionConfig`] bounds keep out, in FIFO
/// order within each priority, and releases them as capacity frees.
struct AdmissionController {
    queue: PriorityFifo<Box<JobRun>>,
}

impl AdmissionController {
    fn new() -> Self {
        AdmissionController {
            queue: PriorityFifo::new(),
        }
    }

    /// The job-slot capacity right now: the configured bound scaled down
    /// by the fraction of executors still warming up after a kill (PR 4's
    /// replacement epochs), floored at one so a fully-degraded pool cannot
    /// wedge admission.
    fn effective_capacity(ctx: &SpangleContext) -> usize {
        let total = ctx.num_executors();
        let warming = ctx.inner.pool.warming_replacements().min(total);
        let bound = ctx.inner.admission.max_concurrent_jobs;
        (bound.saturating_mul(total - warming) / total).max(1)
    }

    /// Whether the scheduler is saturated for new admissions: job slots
    /// full, or resident memory (cache + shuffle) still at the high
    /// watermark *after* the spill tier has had a chance to demote cold
    /// blocks to disk. Spilling comes before shedding: memory saturation
    /// only queues or sheds work when the disk tier could not (or was not
    /// allowed to) bring resident bytes back under the watermark. Also
    /// raises the memory high-water-mark metric, since this is where
    /// saturation is observed.
    fn saturated(ctx: &SpangleContext, running: usize) -> bool {
        if running >= Self::effective_capacity(ctx) {
            return true;
        }
        let under_watermark = ctx.enforce_memory_watermark();
        let resident = (ctx.cached_bytes() + ctx.shuffle_resident_bytes()) as u64;
        ctx.metrics()
            .raise(MetricField::MemoryHighwaterBytes, resident);
        !under_watermark
    }

    /// Planned tasks currently queued at `priority` (the unit of the
    /// per-priority backpressure bound).
    fn queued_tasks_at(&self, priority: i32) -> usize {
        self.queue
            .iter()
            .filter(|j| j.priority == priority)
            .map(|j| j.planned_tasks())
            .sum()
    }

    /// Routes a newly submitted job: admit directly when there is room,
    /// otherwise queue it — or shed it when its priority falls below the
    /// shed threshold or its tasks do not fit the per-priority queue bound.
    fn submit(&mut self, mut job: Box<JobRun>, jobs: &mut HashMap<usize, Box<JobRun>>) {
        let ctx = job.ctx.clone();
        if self.queue.is_empty() && !Self::saturated(&ctx, jobs.len()) {
            admit(job, jobs);
            return;
        }
        // The job would have to wait. (The queue is only ever non-empty
        // while the scheduler is saturated: drain() empties it otherwise.)
        let cfg = &ctx.inner.admission;
        let shed = cfg.shed_below_priority.is_some_and(|t| job.priority < t)
            || self.queued_tasks_at(job.priority) + job.planned_tasks()
                > cfg.max_queued_tasks_per_priority;
        if shed {
            ctx.metrics().add(MetricField::JobsRejected, 1);
            job.resolve_unadmitted(JobOutcome::Rejected, TaskError::Rejected);
            return;
        }
        job.admission_queued_at = Some(Instant::now());
        self.queue.push(job.priority, job);
        ctx.metrics()
            .raise(MetricField::AdmissionQueuePeak, self.queue.len() as u64);
    }

    /// Releases queued jobs (highest priority first, FIFO within one)
    /// while the scheduler has capacity for them.
    fn drain(&mut self, jobs: &mut HashMap<usize, Box<JobRun>>) {
        while let Some(front) = self.queue.front() {
            let ctx = front.ctx.clone();
            if Self::saturated(&ctx, jobs.len()) {
                break;
            }
            let mut job = self.queue.pop_front().expect("front observed above");
            let waited = job
                .admission_queued_at
                .take()
                .map_or(0, |t| t.elapsed().as_nanos() as u64);
            job.admission_wait_nanos = waited;
            ctx.metrics()
                .add(MetricField::AdmissionQueueWaitNanos, waited);
            admit(job, jobs);
        }
    }

    /// Resolves every job (queued or running) whose deadline has passed:
    /// queued ones never run at all; running ones abort through the normal
    /// abandon path so their owned shuffles are released.
    fn expire_deadlines(&mut self, jobs: &mut HashMap<usize, Box<JobRun>>) {
        let now = Instant::now();
        for job in self.queue.extract(|j| j.deadline.is_some_and(|d| d <= now)) {
            job.ctx.metrics().add(MetricField::JobsDeadlined, 1);
            job.resolve_unadmitted(JobOutcome::Deadlined, TaskError::DeadlineExceeded);
        }
        let expired: Vec<usize> = jobs
            .iter()
            .filter(|(_, j)| j.deadline.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let mut job = jobs.remove(&id).expect("expired job vanished");
            job.ctx.metrics().add(MetricField::JobsDeadlined, 1);
            let err = job.abort(job.result_idx, 0, 0, TaskError::DeadlineExceeded);
            job.fail_with(JobOutcome::Deadlined, err);
        }
    }

    /// The driver's receive timeout: the nearest timed obligation among
    /// queued and running jobs — a deadline, or a backoff-delayed retry
    /// coming due — clamped to the admission poll while jobs are queued
    /// (their admission inputs can change without an event), a running
    /// job could grow a speculation candidate (stragglers ripen without
    /// generating events), or the health monitor is watching in-flight
    /// attempts (heartbeats go silent without generating events). `None`
    /// means block indefinitely — nothing is waiting on time.
    fn receive_timeout(&self, jobs: &HashMap<usize, Box<JobRun>>) -> Option<Duration> {
        let now = Instant::now();
        let nearest = jobs
            .values()
            .filter_map(|j| j.deadline)
            .chain(self.queue.iter().filter_map(|j| j.deadline))
            .chain(jobs.values().filter_map(|j| j.nearest_backoff_due()))
            .min()
            .map(|d| d.saturating_duration_since(now));
        let polling = jobs
            .values()
            .any(|j| j.wants_speculation_poll() || j.wants_health_poll());
        if self.queue.is_empty() && !polling {
            nearest
        } else {
            Some(nearest.map_or(ADMISSION_POLL, |t| t.min(ADMISSION_POLL)))
        }
    }
}

/// Runs the speculation scan over every running job, launching duplicate
/// attempts for ripe stragglers. A job whose duplicate cannot be submitted
/// (the pool shut down underneath it) fails through the normal abort path.
fn run_speculation(jobs: &mut HashMap<usize, Box<JobRun>>) {
    let ids: Vec<usize> = jobs.keys().copied().collect();
    for id in ids {
        let Some(job) = jobs.get_mut(&id) else {
            continue;
        };
        if let Err(err) = job.check_speculation() {
            let job = jobs.remove(&id).expect("job vanished mid-speculation");
            job.fail(err);
        }
    }
}

/// One watched attempt of the no-progress watchdog: the executor progress
/// count last observed for it, when that observation was made, and whether
/// the watchdog already tripped for it (one duplicate per frozen attempt).
struct ProgressObs {
    progress: u64,
    since: Instant,
    tripped: bool,
}

/// Driver-local state of the health monitor: per-attempt progress
/// observations for the watchdog, and per-executor recent-outcome windows
/// plus quarantine strike counts. The shared [`HealthBoard`] carries only
/// what workers must see (heartbeats, the placement mask); everything that
/// only the driver reasons about lives here, unsynchronized.
struct HealthMonitor {
    /// Keyed by `(job_id, stage_idx, partition)`.
    observed: HashMap<(usize, usize, usize), ProgressObs>,
    /// Recent task outcomes per executor (`true` = success), bounded by
    /// the configured quarantine window.
    outcomes: Vec<VecDeque<bool>>,
    /// Times each executor has been quarantined; doubles (with jitter) its
    /// probation on every failed canary.
    strikes: Vec<usize>,
}

impl HealthMonitor {
    fn new() -> Self {
        HealthMonitor {
            observed: HashMap::new(),
            outcomes: Vec::new(),
            strikes: Vec::new(),
        }
    }

    fn ensure_executors(&mut self, n: usize) {
        while self.outcomes.len() < n {
            self.outcomes.push(VecDeque::new());
            self.strikes.push(0);
        }
    }

    /// Probation duration for `executor`'s next quarantine: the configured
    /// base doubled per prior strike, jittered deterministically from the
    /// backoff seed.
    fn probation_for(&self, ctx: &SpangleContext, executor: usize) -> Duration {
        let cfg = &ctx.inner.health;
        jittered_backoff(
            cfg.probation,
            cfg.probation.saturating_mul(64),
            self.strikes[executor],
            ctx.inner.backoff.seed ^ splitmix64(executor as u64),
        )
    }

    /// Benches `executor`: drains placement to it, bans it from stealing,
    /// and counts the quarantine.
    fn quarantine(&mut self, ctx: &SpangleContext, board: &HealthBoard, executor: usize) {
        let probation = self.probation_for(ctx, executor);
        board.quarantine(executor, probation);
        ctx.inner.pool.set_steal_ban(executor, true);
        self.strikes[executor] += 1;
        self.outcomes[executor].clear();
        ctx.metrics().add(MetricField::ExecutorsQuarantined, 1);
    }

    /// Feeds one task outcome into the quarantine state machine: resolves
    /// an in-flight canary, or updates the executor's failure window and
    /// benches it when the recent rate crosses the threshold. Only genuine
    /// task faults (injected failures, panics) count against an executor —
    /// cancellations, kills, and fetch failures are the scheduler's (or a
    /// parent's) doing, and counting them would quarantine executors the
    /// driver itself disrupted.
    fn observe_task(
        &mut self,
        ctx: &SpangleContext,
        executor: usize,
        outcome: &Result<Option<ErasedResult>, TaskError>,
    ) {
        let cfg = &ctx.inner.health;
        if !cfg.enabled {
            return;
        }
        self.ensure_executors(ctx.num_executors());
        let board = ctx.inner.pool.health_board();
        let fault = matches!(
            outcome,
            Err(TaskError::Injected) | Err(TaskError::Panicked(_))
        );
        if board.is_canary(executor) {
            match outcome {
                Ok(_) => {
                    // The canary came back clean: full re-admission.
                    board.mark_healthy(executor);
                    ctx.inner.pool.set_steal_ban(executor, false);
                    self.outcomes[executor].clear();
                }
                Err(_) if fault => self.quarantine(ctx, &board, executor),
                Err(_) => board.reopen_probation(executor),
            }
            return;
        }
        if !fault && outcome.is_err() {
            return;
        }
        let window = &mut self.outcomes[executor];
        window.push_back(outcome.is_ok());
        while window.len() > cfg.quarantine_window {
            window.pop_front();
        }
        if !fault || board.state(executor) != STATE_HEALTHY {
            return;
        }
        let samples = window.len();
        if samples < cfg.quarantine_min_samples {
            return;
        }
        let failures = window.iter().filter(|&&ok| !ok).count();
        if failures as f64 / samples as f64 >= cfg.quarantine_threshold {
            self.quarantine(ctx, &board, executor);
        }
    }
}

/// The driver's per-iteration health pass: drains due backoff retries for
/// every job, then (with health monitoring enabled) runs missed-heartbeat
/// loss detection and the no-progress watchdog. A job whose resubmission
/// fails underneath it aborts through the normal path.
fn run_health(jobs: &mut HashMap<usize, Box<JobRun>>, monitor: &mut HealthMonitor) {
    let ids: Vec<usize> = jobs.keys().copied().collect();
    for id in ids {
        let Some(job) = jobs.get_mut(&id) else {
            continue;
        };
        if let Err(err) = job.health_tick(monitor) {
            let job = jobs.remove(&id).expect("job vanished mid-health-check");
            job.fail(err);
        }
    }
    monitor.observed.retain(|key, _| jobs.contains_key(&key.0));
}

/// Starts an admitted job and parks it in the running map unless it
/// resolved instantly (zero-stage result, or a failure to even start).
fn admit(mut job: Box<JobRun>, jobs: &mut HashMap<usize, Box<JobRun>>) {
    match job.start() {
        Err(err) => job.fail(err),
        Ok(()) if job.is_finished() => job.finish(),
        Ok(()) => {
            jobs.insert(job.job_id, job);
        }
    }
}

/// The service's event loop: demultiplexes messages by job tag, advances
/// the owning job's state machine, and finalises jobs that finish or
/// abort. New jobs pass through the [`AdmissionController`] first, and the
/// loop wakes on a timer (instead of blocking forever on the channel)
/// whenever a deadline is pending or jobs are queued for admission. Runs
/// no user code — task bodies run on executors, actions block on their
/// handles.
fn drive_loop(rx: Receiver<Tagged<ServiceEvent>>) {
    let mut jobs: HashMap<usize, Box<JobRun>> = HashMap::new();
    let mut admission = AdmissionController::new();
    let mut monitor = HealthMonitor::new();
    loop {
        admission.expire_deadlines(&mut jobs);
        run_health(&mut jobs, &mut monitor);
        run_speculation(&mut jobs);
        admission.drain(&mut jobs);
        let received = match admission.receive_timeout(&jobs) {
            None => rx.recv().map_err(|_| ()),
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(msg) => Ok(msg),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => Err(()),
            },
        };
        let Ok(Tagged { tag, msg }) = received else {
            break;
        };
        match msg {
            ServiceEvent::Shutdown => break,
            ServiceEvent::Submit(job) => {
                debug_assert_eq!(tag, job.job_id, "submit tag must be the job id");
                admission.submit(job, &mut jobs);
            }
            event => {
                // Task outcomes feed the quarantine monitor before the
                // owning job consumes them (stale-tag events included —
                // a straggler of an aborted job still ran on a real
                // executor, but without its job there is no config to
                // judge it by, so only live jobs' events are counted).
                if let ServiceEvent::Task {
                    ran_on,
                    ref outcome,
                    ..
                } = event
                {
                    if let Some(job) = jobs.get(&tag) {
                        monitor.observe_task(&job.ctx, ran_on, outcome);
                    }
                }
                // Stale tags (events of a job that already finished or
                // aborted) are dropped here.
                let step = match jobs.get_mut(&tag) {
                    Some(job) => job.on_event(event),
                    None => continue,
                };
                match step {
                    Err(err) => {
                        let job = jobs.remove(&tag).expect("job vanished mid-event");
                        job.fail(err);
                    }
                    Ok(()) => {
                        if jobs.get(&tag).is_some_and(|job| job.is_finished()) {
                            let job = jobs.remove(&tag).expect("job vanished mid-event");
                            job.finish();
                        }
                    }
                }
            }
        }
    }
    // Teardown (or every sender dropped) with jobs still live or queued:
    // fail them so no caller blocks forever on its handle.
    for job in admission.queue.drain() {
        job.resolve_unadmitted(JobOutcome::Aborted, TaskError::ExecutorShutdown);
    }
    for (_, job) in jobs.drain() {
        let err = JobError {
            job_id: job.job_id,
            stage_id: 0,
            partition: 0,
            attempts: 0,
            last_error: TaskError::ExecutorShutdown,
        };
        job.fail(err);
    }
}

/// Builds the job's stage graph: one map stage per reachable shuffle
/// (parents before children, so indices are topological) plus the result
/// stage at the end.
fn build_stages<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> Vec<Stage> {
    let deps = topo_shuffle_deps(rdd.lineage());
    let mut by_shuffle: HashMap<usize, usize> = HashMap::new();
    let mut stages: Vec<Stage> = Vec::with_capacity(deps.len() + 1);

    // One plan territory per stage, in stage order: each shuffle's map-side
    // parent lineage, then the result lineage. The planner attributes fused
    // chains and elided shuffle edges to the stage that executes them.
    let territories: Vec<Arc<dyn LineageNode>> = deps
        .iter()
        .map(|dep| dep.parent_lineage())
        .chain(std::iter::once(rdd.lineage()))
        .collect();
    let plans = plan::analyze_stages(&territories, rdd.context().planner());

    for (idx, dep) in deps.iter().enumerate() {
        by_shuffle.insert(dep.shuffle_id(), stages.len());
        let work: StageWork = {
            let dep = Arc::clone(dep);
            Arc::new(move |tc: &TaskContext| {
                dep.run_map_task(tc.partition, tc);
                None
            })
        };
        stages.push(Stage {
            shuffle_id: Some(dep.shuffle_id()),
            work,
            parents: Vec::new(),
            children: Vec::new(),
            num_tasks: dep.num_map_partitions(),
            site_rdd: dep.parent_rdd_id(),
            state: StageState::Idle,
            stage_id: 0,
            waiting_on: 0,
            remaining: 0,
            task_nanos: 0,
            tasks_stolen: 0,
            started: None,
            pending_retry: Vec::new(),
            fetch_failures: 0,
            recovered_maps: 0,
            fused_chains: plans[idx].fused_chains,
            elided_shuffles: plans[idx].elided_shuffles,
            partitions_coalesced: 0,
            inflight: HashMap::new(),
            durations: Vec::new(),
            finished: HashSet::new(),
            tasks_speculated: 0,
            speculation_wins: 0,
            tasks_cancelled: 0,
            watchdog_trips: 0,
            backoff_nanos: 0,
            spill_baseline: (0, 0, 0),
        });
    }

    // Wire map-stage edges: a stage's parents are the shuffles its map
    // side reads, i.e. the shuffle dependencies reachable from its parent
    // lineage without crossing another shuffle boundary.
    for (idx, dep) in deps.iter().enumerate() {
        for parent in direct_parent_shuffles(dep.parent_lineage()) {
            let p = by_shuffle[&parent.shuffle_id()];
            stages[p].children.push(idx);
            stages[idx].parents.push(p);
        }
    }

    let result_idx = stages.len();
    let mut result_parents = Vec::new();
    for parent in direct_parent_shuffles(rdd.lineage()) {
        let p = by_shuffle[&parent.shuffle_id()];
        stages[p].children.push(result_idx);
        result_parents.push(p);
    }
    let work: StageWork = {
        let target = rdd.clone();
        let func = Arc::new(func);
        Arc::new(move |tc: &TaskContext| {
            Some(Box::new(func(tc.partition, target.iterator(tc.partition, tc))) as ErasedResult)
        })
    };
    stages.push(Stage {
        shuffle_id: None,
        work,
        parents: result_parents,
        children: Vec::new(),
        num_tasks: rdd.num_partitions(),
        site_rdd: rdd.id(),
        state: StageState::Idle,
        stage_id: 0,
        waiting_on: 0,
        remaining: 0,
        task_nanos: 0,
        tasks_stolen: 0,
        started: None,
        pending_retry: Vec::new(),
        fetch_failures: 0,
        recovered_maps: 0,
        fused_chains: plans[result_idx].fused_chains,
        elided_shuffles: plans[result_idx].elided_shuffles,
        partitions_coalesced: 0,
        inflight: HashMap::new(),
        durations: Vec::new(),
        finished: HashSet::new(),
        tasks_speculated: 0,
        speculation_wins: 0,
        tasks_cancelled: 0,
        watchdog_trips: 0,
        backoff_nanos: 0,
        spill_baseline: (0, 0, 0),
    });
    stages
}

/// Collects all shuffle dependencies reachable from `root`, ordered so
/// that every shuffle appears after the shuffles its map stage reads from.
fn topo_shuffle_deps(root: Arc<dyn LineageNode>) -> Vec<Arc<dyn ShuffleDepDyn>> {
    struct Walk {
        order: Vec<Arc<dyn ShuffleDepDyn>>,
        seen_shuffles: HashSet<usize>,
        seen_nodes: HashSet<usize>,
    }

    impl Walk {
        fn visit_node(&mut self, node: Arc<dyn LineageNode>) {
            if !self.seen_nodes.insert(node.rdd_id()) {
                return;
            }
            for dep in node.dependencies() {
                match dep {
                    Dependency::Narrow(parent) => self.visit_node(parent),
                    Dependency::Shuffle(shuffle) => self.visit_shuffle(shuffle),
                }
            }
        }

        fn visit_shuffle(&mut self, shuffle: Arc<dyn ShuffleDepDyn>) {
            if !self.seen_shuffles.insert(shuffle.shuffle_id()) {
                return;
            }
            self.visit_node(shuffle.parent_lineage());
            self.order.push(shuffle);
        }
    }

    let mut walk = Walk {
        order: Vec::new(),
        seen_shuffles: HashSet::new(),
        seen_nodes: HashSet::new(),
    };
    walk.visit_node(root);
    walk.order
}

/// The shuffle dependencies `root` reads *directly*: reachable through
/// narrow edges only, without descending past another shuffle boundary.
fn direct_parent_shuffles(root: Arc<dyn LineageNode>) -> Vec<Arc<dyn ShuffleDepDyn>> {
    let mut out: Vec<Arc<dyn ShuffleDepDyn>> = Vec::new();
    let mut seen_nodes = HashSet::new();
    let mut seen_shuffles = HashSet::new();
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if !seen_nodes.insert(node.rdd_id()) {
            continue;
        }
        for dep in node.dependencies() {
            match dep {
                Dependency::Narrow(parent) => stack.push(parent),
                Dependency::Shuffle(shuffle) => {
                    if seen_shuffles.insert(shuffle.shuffle_id()) {
                        out.push(shuffle);
                    }
                }
            }
        }
    }
    out
}

/// Driver-side state of one job, owned by the scheduler service while the
/// job is in flight.
struct JobRun {
    ctx: SpangleContext,
    job_id: usize,
    /// Priority the job was submitted with (higher is served first).
    priority: i32,
    /// Absolute deadline from `SpangleContext::run_with_deadline`; the
    /// driver resolves the job as [`JobOutcome::Deadlined`] once it
    /// passes, whether the job is queued for admission or running.
    deadline: Option<Instant>,
    stages: Vec<Stage>,
    /// Index of the result stage (always the last).
    result_idx: usize,
    /// Sender that stamps this job's id on every task / subscription
    /// event posted into the shared loop.
    tx: MuxSender<ServiceEvent>,
    /// Shuffles this job claimed ownership of and has not completed yet;
    /// abandoned on abort so other jobs can re-claim them.
    owned: HashSet<usize>,
    /// Stages currently in `Running` state.
    running: usize,
    /// High-water mark of `running`.
    max_concurrent: usize,
    /// Nanoseconds of this job's task time per executor, from task events.
    executor_busy: Vec<u64>,
    /// Nanoseconds this job's task attempts spent queued on executors
    /// before starting, summed over attempts.
    queue_wait_nanos: u64,
    /// When admission control queued the job (None once admitted or when
    /// it was admitted directly).
    admission_queued_at: Option<Instant>,
    /// Time the job spent in the admission queue before starting.
    admission_wait_nanos: u64,
    /// Remaining executor-loss / fetch-failure resubmissions before the
    /// job gives up and aborts (the per-job recovery budget; failures of
    /// this kind do not charge the per-task attempt budget).
    resubmissions_left: usize,
    /// Retries held back by seeded exponential backoff, as `(due, stage,
    /// partition, attempt)`: drained by the driver's timer once due. The
    /// partitions stay counted in their stage's `remaining`, so a stage
    /// cannot finish around a delayed retry.
    delayed: Vec<(Instant, usize, usize, usize)>,
    /// Backoff strike count per `(stage_idx, partition)`: each delayed
    /// retry of the same task doubles its delay (up to the cap).
    backoff_strikes: HashMap<(usize, usize), usize>,
    reports: Vec<StageReport>,
    /// Result-stage outputs, filled in as task events arrive.
    results: Vec<Option<ErasedResult>>,
    /// Resolves the caller's [`JobHandle`].
    done: Sender<Result<Vec<ErasedResult>, JobError>>,
    started: Instant,
}

impl JobRun {
    /// First touch by the service: demand-driven activation from the
    /// result stage.
    fn start(&mut self) -> Result<(), JobError> {
        self.activate(self.result_idx)
    }

    /// Whether the result stage (and therefore the job) is done.
    fn is_finished(&self) -> bool {
        self.stages[self.result_idx].state == StageState::Finished
    }

    /// Tasks the job would run if every stage ran (skipped-stage reuse can
    /// make the real count smaller): the unit admission control's
    /// per-priority queue bound is expressed in.
    fn planned_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.num_tasks).sum()
    }

    /// Resolves a job that was never admitted (shed, deadlined while
    /// queued, or still queued at teardown): records a report with no
    /// stage entries and resolves the caller's handle with `err`. Nothing
    /// of the job ever ran, so there is nothing to abandon or reclaim.
    fn resolve_unadmitted(mut self: Box<Self>, outcome: JobOutcome, err: TaskError) {
        self.record(outcome);
        let job_error = JobError {
            job_id: self.job_id,
            stage_id: 0,
            partition: 0,
            attempts: 0,
            last_error: err,
        };
        self.stages.clear();
        let _ = self.done.send(Err(job_error));
    }

    /// Advances the job's state machine by one event from the shared loop.
    fn on_event(&mut self, event: ServiceEvent) -> Result<(), JobError> {
        match event {
            ServiceEvent::Task {
                stage_idx,
                partition,
                attempt,
                nanos,
                wait_nanos,
                ran_on,
                stolen,
                speculative,
                outcome,
            } => {
                self.stages[stage_idx].task_nanos += nanos;
                self.stages[stage_idx].tasks_stolen += stolen as usize;
                self.executor_busy[ran_on] += nanos;
                self.queue_wait_nanos += wait_nanos;
                // Retire this event's inflight record. No record, or a
                // partition already settled by its first completion, marks
                // a *loser* event — the slower half of a speculation race,
                // or a straggler of a superseded stage run. Its time is
                // accounted above, but it must not touch `remaining`,
                // retries, or any budget: the partition is spoken for.
                let retired = self.retire_attempt(stage_idx, partition, attempt, speculative);
                if !retired || self.stages[stage_idx].finished.contains(&partition) {
                    return Ok(());
                }
                match outcome {
                    Ok(result) => {
                        self.stages[stage_idx].finished.insert(partition);
                        self.stages[stage_idx].durations.push(nanos);
                        if speculative {
                            self.stages[stage_idx].speculation_wins += 1;
                            self.ctx.metrics().add(MetricField::SpeculationWins, 1);
                        }
                        // First completion wins the partition; the slower
                        // twin (if racing) is cancelled and its eventual
                        // event drops into the loser path above.
                        self.cancel_partition(stage_idx, partition);
                        if let Some(r) = result {
                            self.results[partition] = Some(r);
                        }
                        self.stages[stage_idx].remaining -= 1;
                        if self.stages[stage_idx].remaining == 0 {
                            self.finish_stage(stage_idx)?;
                        }
                    }
                    Err(_) if self.has_inflight(stage_idx, partition) => {
                        // The twin of the speculation race is still running
                        // and may yet deliver the partition: this side just
                        // drops out, no retry and no budget charge.
                    }
                    Err(TaskError::FetchFailed { shuffle_id, map_id }) => {
                        self.recover_fetch_failure(
                            stage_idx, partition, attempt, shuffle_id, map_id,
                        )?;
                    }
                    Err(err @ (TaskError::ExecutorLost { .. } | TaskError::Cancelled)) => {
                        // The attempt died with its executor (or was
                        // interrupted by a cancellation whose initiator —
                        // a kill racing the epoch check — has no surviving
                        // twin) through no fault of its own: replay it
                        // (same attempt number) on the replacement,
                        // charging only the job's resubmission budget.
                        self.charge_resubmission(stage_idx, partition, attempt, err)?;
                        self.ctx.metrics().add(MetricField::Recomputations, 1);
                        self.resubmit_after_backoff(stage_idx, partition, attempt)?;
                    }
                    Err(err) => {
                        let attempts = attempt + 1;
                        if attempts >= self.ctx.inner.max_task_attempts {
                            return Err(self.abort(stage_idx, partition, attempts, err));
                        }
                        self.ctx.metrics().add(MetricField::TaskRetries, 1);
                        self.ctx.metrics().add(MetricField::Recomputations, 1);
                        self.resubmit_after_backoff(stage_idx, partition, attempt + 1)?;
                    }
                }
            }
            ServiceEvent::External {
                stage_idx,
                completed,
            } => {
                if completed {
                    self.skip(stage_idx);
                    self.satisfy_children(stage_idx)?;
                } else {
                    // The owning job abandoned the shuffle; race to
                    // re-claim it (we may become the owner now).
                    self.stages[stage_idx].state = StageState::Idle;
                    self.activate(stage_idx)?;
                    // If activation skipped or finished it already,
                    // wake the children that were counting on it.
                    if self.stages[stage_idx].is_satisfied() {
                        self.satisfy_children(stage_idx)?;
                    }
                }
            }
            ServiceEvent::Submit(_) | ServiceEvent::Shutdown => {
                unreachable!("control messages are handled by the driver loop")
            }
        }
        Ok(())
    }

    /// Demand-driven activation: resolves the stage to `Skipped`,
    /// `External`, `Running`, or `Waiting` (and recursively activates its
    /// ancestors when this job owns it). Idempotent.
    fn activate(&mut self, idx: usize) -> Result<(), JobError> {
        if self.stages[idx].state != StageState::Idle {
            return Ok(());
        }
        match self.stages[idx].shuffle_id {
            // The result stage is always ours to run.
            None => self.activate_owned(idx),
            Some(shuffle_id) => match self.ctx.inner.shuffle.try_claim(shuffle_id) {
                ShuffleClaim::Completed => {
                    self.skip(idx);
                    Ok(())
                }
                ShuffleClaim::InFlight => {
                    self.watch(idx, shuffle_id);
                    Ok(())
                }
                ShuffleClaim::Owner => {
                    self.owned.insert(shuffle_id);
                    self.activate_owned(idx)
                }
            },
        }
    }

    /// Activates a stage this job owns: activates its parents, then either
    /// submits it (all parents satisfied) or parks it in `Waiting`.
    fn activate_owned(&mut self, idx: usize) -> Result<(), JobError> {
        self.stages[idx].state = StageState::Waiting;
        let parents = self.stages[idx].parents.clone();
        let mut waiting_on = 0;
        for p in parents {
            self.activate(p)?;
            if !self.stages[p].is_satisfied() {
                waiting_on += 1;
            }
        }
        self.stages[idx].waiting_on = waiting_on;
        if waiting_on == 0 {
            self.submit_stage(idx)?;
        }
        Ok(())
    }

    /// Marks a stage satisfied-without-running and accounts the skip.
    fn skip(&mut self, idx: usize) {
        let stage = &mut self.stages[idx];
        stage.state = StageState::Skipped;
        stage.stage_id = self.ctx.new_stage_id();
        self.ctx.metrics().add(MetricField::StagesSkipped, 1);
        self.reports.push(StageReport {
            stage_id: stage.stage_id,
            shuffle_id: stage.shuffle_id,
            num_tasks: stage.num_tasks,
            tasks_stolen: 0,
            outcome: StageOutcome::Skipped,
            task_nanos: 0,
            wall_nanos: 0,
            fetch_failures: 0,
            map_partitions_recomputed: 0,
            // A skipped stage executed nothing, so none of its planned
            // rewrites ran.
            stages_fused: 0,
            shuffles_elided: 0,
            partitions_coalesced: 0,
            tasks_speculated: 0,
            speculation_wins: 0,
            tasks_cancelled: 0,
            watchdog_trips: 0,
            backoff_nanos: 0,
            blocks_spilled: 0,
            blocks_rehydrated: 0,
            spill_bytes: 0,
        });
    }

    /// Subscribes to an in-flight external shuffle: when the owning job
    /// completes (or abandons) it, the callback posts back into the shared
    /// loop tagged with this job's id. No thread is parked; if this job
    /// aborts meanwhile, the event is dropped as a stale tag when it
    /// fires.
    fn watch(&mut self, idx: usize, shuffle_id: usize) {
        self.stages[idx].state = StageState::External;
        let tx = self.tx.clone();
        self.ctx.inner.shuffle.subscribe(
            shuffle_id,
            Box::new(move |completed| {
                let _ = tx.send(ServiceEvent::External {
                    stage_idx: idx,
                    completed,
                });
            }),
        );
    }

    /// Submits every task of a stage to the executor pool, grouped by the
    /// runtime coalescing plan when the stage reads shuffle output.
    fn submit_stage(&mut self, idx: usize) -> Result<(), JobError> {
        let snap = self.ctx.metrics_snapshot();
        let stage = &mut self.stages[idx];
        stage.stage_id = self.ctx.new_stage_id();
        stage.state = StageState::Running;
        stage.remaining = stage.num_tasks;
        // A stage can run more than once per job (a watched external
        // shuffle abandoned mid-recovery forces a full re-run); reset the
        // per-run accounting so the new run's report starts clean.
        stage.task_nanos = 0;
        stage.tasks_stolen = 0;
        stage.fetch_failures = 0;
        stage.recovered_maps = 0;
        stage.partitions_coalesced = 0;
        stage.inflight.clear();
        stage.durations.clear();
        stage.finished.clear();
        stage.tasks_speculated = 0;
        stage.speculation_wins = 0;
        stage.tasks_cancelled = 0;
        stage.watchdog_trips = 0;
        stage.backoff_nanos = 0;
        stage.spill_baseline = (
            snap.blocks_spilled,
            snap.blocks_rehydrated,
            snap.spill_bytes,
        );
        stage.started = Some(Instant::now());
        self.ctx.metrics().add(MetricField::StagesRun, 1);
        if stage.fused_chains > 0 {
            self.ctx
                .metrics()
                .add(MetricField::StagesFused, stage.fused_chains as u64);
        }
        if stage.elided_shuffles > 0 {
            self.ctx
                .metrics()
                .add(MetricField::ShufflesElided, stage.elided_shuffles as u64);
        }
        self.running += 1;
        self.max_concurrent = self.max_concurrent.max(self.running);
        let num_tasks = self.stages[idx].num_tasks;
        if num_tasks == 0 {
            return self.finish_stage(idx);
        }
        let groups = self.plan_task_groups(idx);
        if groups.len() < num_tasks {
            let merged = num_tasks - groups.len();
            self.stages[idx].partitions_coalesced = merged;
            self.ctx
                .metrics()
                .add(MetricField::PartitionsCoalesced, merged as u64);
        }
        for group in groups {
            self.submit_attempts(idx, group, 0)?;
        }
        Ok(())
    }

    /// Partition grouping for one stage run. When runtime coalescing is on
    /// and the stage reads shuffle output, the per-bucket byte counts the
    /// map stages deposited are packed into contiguous task groups
    /// ([`plan::coalesce_task_groups`]), floored at one group per executor
    /// so coalescing never costs parallelism. Every other stage (and every
    /// retry or recovery resubmission) runs one task per partition.
    fn plan_task_groups(&self, idx: usize) -> Vec<Vec<usize>> {
        let stage = &self.stages[idx];
        let planner = self.ctx.planner();
        if !planner.coalesce_partitions || stage.num_tasks <= 1 || stage.parents.is_empty() {
            return (0..stage.num_tasks).map(|p| vec![p]).collect();
        }
        let mut bytes = vec![0usize; stage.num_tasks];
        for &p in &stage.parents {
            if let Some(shuffle_id) = self.stages[p].shuffle_id {
                let per = self
                    .ctx
                    .inner
                    .shuffle
                    .reduce_bucket_bytes(shuffle_id, stage.num_tasks);
                for (acc, add) in bytes.iter_mut().zip(per) {
                    *acc = acc.saturating_add(add);
                }
            }
        }
        plan::coalesce_task_groups(
            &bytes,
            planner.target_partition_bytes,
            self.ctx.num_executors(),
        )
    }

    /// Submits one task attempt, placed on the executor owning its
    /// partition and tagged with the job's priority. Retries and recovery
    /// resubmissions always come through here as singletons, so their
    /// attempt bookkeeping is untouched by coalescing.
    fn submit_task(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
    ) -> Result<(), JobError> {
        self.submit_attempts(stage_idx, vec![partition], attempt)
    }

    /// Launches the duplicate side of a speculation race: the same attempt
    /// number as the running original, flagged speculative, placed on the
    /// least-loaded executor *other than* the one the straggler occupies,
    /// so the duplicate cannot queue behind the very task it is meant to
    /// overtake (a one-task backlog behind a wedged body is never stolen).
    /// The original's token locates where it actually runs — a stolen
    /// straggler executes away from its home slot, and a straggler still
    /// *queued* (stuck behind another straggler) runs nowhere yet, in
    /// which case its home queue is the one to avoid.
    fn submit_speculative(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
    ) -> Result<(), JobError> {
        let original_token = self.stages[stage_idx]
            .inflight
            .get(&partition)
            .and_then(|attempts| attempts.first())
            .map(|a| a.token.clone());
        let avoid = original_token
            .and_then(|token| self.ctx.inner.pool.executor_running(&token))
            .map(|(executor, _)| executor)
            .unwrap_or_else(|| self.ctx.inner.pool.executor_for(partition));
        let lens = self.ctx.inner.pool.queue_lens();
        // Quarantined slots are drained: never hand a duplicate to the
        // very kind of executor speculation exists to escape. With no
        // healthy alternative, any other slot will do, and a one-executor
        // cluster simply skips the duplicate (the original still runs).
        let board = self.ctx.inner.pool.health_board();
        let target = (0..lens.len())
            .filter(|&e| e != avoid && board.state(e) == STATE_HEALTHY)
            .min_by_key(|&e| lens[e])
            .or_else(|| {
                (0..lens.len())
                    .filter(|&e| e != avoid)
                    .min_by_key(|&e| lens[e])
            });
        let Some(target) = target else {
            return Ok(());
        };
        self.submit_group(stage_idx, vec![partition], attempt, true, Some(target))
    }

    /// Submits one executor task covering `partitions` (a coalesced group,
    /// or a singleton), placed on the executor owning the first partition
    /// and tagged with the job's priority. The task runs each partition's
    /// body in order and posts one [`ServiceEvent::Task`] per partition,
    /// so `remaining`, retry, and fetch-failure recovery bookkeeping are
    /// identical to ungrouped execution — a partition that fails inside a
    /// group is replayed as a singleton while its group-mates' outcomes
    /// stand. A shut-down pool aborts the job cleanly.
    fn submit_attempts(
        &mut self,
        stage_idx: usize,
        partitions: Vec<usize>,
        attempt: usize,
    ) -> Result<(), JobError> {
        self.submit_group(stage_idx, partitions, attempt, false, None)
    }

    /// The common submission body behind [`Self::submit_attempts`] and
    /// [`Self::submit_speculative`]: registers the group's attempts as
    /// inflight under a shared [`CancelToken`], then queues one executor
    /// task — placed by partition ownership, or on `place_on` for a
    /// speculative duplicate.
    fn submit_group(
        &mut self,
        stage_idx: usize,
        partitions: Vec<usize>,
        attempt: usize,
        speculative: bool,
        place_on: Option<usize>,
    ) -> Result<(), JobError> {
        let stage = &self.stages[stage_idx];
        let job_id = self.job_id;
        let stage_id = stage.stage_id;
        let site_rdd = stage.site_rdd;
        let home = partitions[0];
        let work = Arc::clone(&stage.work);
        let tx = self.tx.clone();
        let ctx = self.ctx.clone();
        let queued = Instant::now();
        let token = CancelToken::new();
        let singleton = partitions.len() == 1;
        for &partition in &partitions {
            self.stages[stage_idx]
                .inflight
                .entry(partition)
                .or_default()
                .push(Attempt {
                    attempt,
                    speculative,
                    singleton,
                    token: token.clone(),
                });
        }
        let task = Box::new(move |info: &TaskInfo| {
            let wait_nanos = queued.elapsed().as_nanos() as u64;
            // Wrapped in an Option so the last partition can release it
            // before its completion event (see below).
            let mut work = Some(work);
            let last = partitions.len() - 1;
            for (i, &partition) in partitions.iter().enumerate() {
                ctx.metrics().add(MetricField::TasksRun, 1);
                if info.stolen {
                    ctx.metrics().add(MetricField::TasksStolen, 1);
                }
                let site = TaskSite {
                    rdd_id: site_rdd,
                    partition,
                };
                // Built here, not at submission: the executor (and its
                // incarnation) are only known once the attempt starts, and
                // everything the attempt produces is attributed to them.
                let tc = TaskContext {
                    job_id,
                    stage_id,
                    partition,
                    attempt,
                    executor: info.ran_on,
                    epoch: info.epoch,
                };
                let start = Instant::now();
                let body = work.as_ref().expect("task group released work early");
                // An armed wedge turns this attempt into a deterministic
                // straggler: it spins at a cancellation point in place of
                // its body until the driver's speculation (or an abort)
                // cancels it. The wedge is consumed here, so the
                // speculative duplicate of the same site runs clean. A
                // stall is the sneakier cousin: the spin keeps stamping
                // heartbeats (the executor looks alive) but never ticks
                // progress, so only the no-progress watchdog can see it.
                let wedged = ctx.inner.failures.take_wedge(site);
                let stalled = ctx.inner.failures.take_stall(site);
                let mut outcome = if ctx.inner.failures.should_fail(site, attempt)
                    || ctx.inner.failures.should_fail_on(info.ran_on)
                {
                    Err(TaskError::Injected)
                } else {
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        if wedged {
                            loop {
                                cancellation_point();
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                        if stalled {
                            loop {
                                // Deliberately NOT cancellation_point():
                                // that would tick progress and hide the
                                // stall from the watchdog.
                                if is_task_cancelled() {
                                    std::panic::panic_any(CancelledError);
                                }
                                stamp_heartbeat_only();
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                        body(&tc)
                    }))
                    .map_err(|payload| {
                        if payload.downcast_ref::<CancelledError>().is_some() {
                            TaskError::Cancelled
                        } else {
                            match payload.downcast_ref::<FetchFailedError>() {
                                Some(fetch) => TaskError::FetchFailed {
                                    shuffle_id: fetch.shuffle_id,
                                    map_id: fetch.map_id,
                                },
                                None => TaskError::Panicked(panic_message(payload.as_ref())),
                            }
                        }
                    })
                };
                // The injector's executor kills fire here, after the victim's
                // Nth task body ran: the kill discards the incarnation's
                // blocks and retires its epoch, so the check below turns this
                // very attempt into the first casualty.
                if ctx.inner.failures.take_executor_kill(info.ran_on) {
                    ctx.kill_executor(info.ran_on);
                }
                // An attempt that outlived its incarnation lost its output
                // with the executor; report the loss instead of a stale
                // success. A fetch failure keeps precedence — it names the
                // shuffle the scheduler must repair either way — and so does
                // an injected failure: `fail_task` armed together with
                // `kill_executor_after` must still charge the attempt budget
                // deterministically, not vanish into the free replay the
                // executor-lost path grants. Later partitions of a killed
                // group run under the stale epoch and take the same
                // executor-lost replay, one event each.
                if ctx.inner.pool.epoch(info.ran_on) != info.epoch
                    && !matches!(
                        outcome,
                        Err(TaskError::FetchFailed { .. }) | Err(TaskError::Injected)
                    )
                {
                    outcome = Err(TaskError::ExecutorLost {
                        executor: info.ran_on,
                    });
                }
                // Release the work closure (and the lineage Arcs it captures)
                // BEFORE signalling the driver: once the driver sees the
                // group's final event the job may return and drop its RDDs,
                // and shuffle garbage collection relies on those being the
                // last references.
                if i == last {
                    drop(work.take());
                }
                // The driver may have aborted the job already; its tag is
                // simply stale by the time this lands. Queue wait is
                // charged once per executor task, on its first partition.
                let _ = tx.send(ServiceEvent::Task {
                    stage_idx,
                    partition,
                    attempt,
                    nanos: start.elapsed().as_nanos() as u64,
                    wait_nanos: if i == 0 { wait_nanos } else { 0 },
                    ran_on: info.ran_on,
                    stolen: info.stolen,
                    speculative,
                    outcome,
                });
            }
        });
        let tag = TaskTag {
            job_id: self.job_id,
            priority: self.priority,
        };
        let submitted = match place_on {
            Some(executor) => self
                .ctx
                .inner
                .pool
                .submit_on(executor, tag, Some(token), task),
            None => self
                .ctx
                .inner
                .pool
                .submit_cancellable(home, tag, token, task),
        };
        if submitted.is_err() {
            return Err(self.abort(stage_idx, home, attempt, TaskError::ExecutorShutdown));
        }
        Ok(())
    }

    /// Drops the inflight record of one completed (or failed) attempt.
    /// Returns `false` when no such record exists: the event is a loser —
    /// its partition was settled and cancelled, or its stage run was
    /// superseded by a recovery re-run.
    fn retire_attempt(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
        speculative: bool,
    ) -> bool {
        let stage = &mut self.stages[stage_idx];
        let Some(attempts) = stage.inflight.get_mut(&partition) else {
            return false;
        };
        let Some(pos) = attempts
            .iter()
            .position(|a| a.attempt == attempt && a.speculative == speculative)
        else {
            return false;
        };
        attempts.remove(pos);
        if attempts.is_empty() {
            stage.inflight.remove(&partition);
        }
        true
    }

    /// Whether any attempt of `partition` is still running (the other side
    /// of a speculation race, from the perspective of a failed event).
    fn has_inflight(&self, stage_idx: usize, partition: usize) -> bool {
        self.stages[stage_idx]
            .inflight
            .get(&partition)
            .is_some_and(|a| !a.is_empty())
    }

    /// Cancels every still-running attempt of `partition` — the losers of
    /// its settled race — counting each cancellation.
    fn cancel_partition(&mut self, stage_idx: usize, partition: usize) {
        let Some(attempts) = self.stages[stage_idx].inflight.remove(&partition) else {
            return;
        };
        for a in &attempts {
            a.token.cancel();
        }
        self.stages[stage_idx].tasks_cancelled += attempts.len();
        self.ctx
            .metrics()
            .add(MetricField::TasksCancelled, attempts.len() as u64);
    }

    /// Cancels every running attempt of every stage: job aborts and
    /// expired deadlines must not leave wedged task bodies holding
    /// executors hostage until they finish on their own.
    fn cancel_all_inflight(&mut self) {
        let mut cancelled = 0u64;
        for stage in &mut self.stages {
            for attempts in stage.inflight.values() {
                for a in attempts {
                    a.token.cancel();
                }
            }
            let n: usize = stage.inflight.values().map(Vec::len).sum();
            stage.tasks_cancelled += n;
            cancelled += n as u64;
            stage.inflight.clear();
        }
        if cancelled > 0 {
            self.ctx
                .metrics()
                .add(MetricField::TasksCancelled, cancelled);
        }
    }

    /// Whether the driver should keep a poll timer alive for this job:
    /// some running stage has at least one completed-duration sample and a
    /// lone original attempt that could ripen into a speculation
    /// candidate without generating any event on its own.
    fn wants_speculation_poll(&self) -> bool {
        self.ctx.inner.speculation.enabled
            && self.ctx.num_executors() >= 2
            && self.stages.iter().any(|s| {
                s.state == StageState::Running
                    && !s.durations.is_empty()
                    && s.inflight
                        .values()
                        .any(|a| matches!(&a[..], [x] if !x.speculative && x.singleton))
            })
    }

    /// Whether the driver should keep a poll timer alive for the health
    /// monitor: heartbeats go silent and progress counters freeze without
    /// generating any event, so while this job has attempts in flight (and
    /// monitoring is on) the loop must wake on time to notice.
    fn wants_health_poll(&self) -> bool {
        self.ctx.inner.health.enabled
            && self
                .stages
                .iter()
                .any(|s| s.state == StageState::Running && !s.inflight.is_empty())
    }

    /// When the soonest backoff-delayed retry comes due, if any.
    fn nearest_backoff_due(&self) -> Option<Instant> {
        self.delayed.iter().map(|&(due, ..)| due).min()
    }

    /// Re-submits a retry through seeded exponential backoff: the first
    /// strike of a task waits ~`base`, doubling (with deterministic jitter)
    /// per subsequent strike up to the cap. With backoff disabled (the
    /// `SPANGLE_DISABLE_HEALTH=1` kill switch) the retry is immediate —
    /// exactly the pre-health behavior.
    fn resubmit_after_backoff(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
    ) -> Result<(), JobError> {
        let strike = {
            let s = self
                .backoff_strikes
                .entry((stage_idx, partition))
                .or_insert(0);
            let current = *s;
            *s += 1;
            current
        };
        let delay = self
            .ctx
            .inner
            .backoff
            .delay(self.job_id, stage_idx, partition, strike);
        if delay.is_zero() {
            return self.submit_task(stage_idx, partition, attempt);
        }
        self.stages[stage_idx].backoff_nanos += delay.as_nanos() as u64;
        self.ctx
            .metrics()
            .add(MetricField::BackoffNanos, delay.as_nanos() as u64);
        self.delayed
            .push((Instant::now() + delay, stage_idx, partition, attempt));
        Ok(())
    }

    /// Submits every delayed retry whose backoff has elapsed.
    fn drain_due_backoff(&mut self) -> Result<(), JobError> {
        if self.delayed.is_empty() {
            return Ok(());
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.delayed.retain(|&(at, stage_idx, partition, attempt)| {
            let ready = at <= now;
            if ready {
                due.push((stage_idx, partition, attempt));
            }
            !ready
        });
        for (stage_idx, partition, attempt) in due {
            self.submit_task(stage_idx, partition, attempt)?;
        }
        Ok(())
    }

    /// The driver's health pass over this job: releases due backoff
    /// retries, then — with monitoring on — runs the two autonomous
    /// detectors over every in-flight attempt that is actually occupying
    /// an executor right now.
    ///
    /// *Loss*: an executor with a running attempt that has stamped nothing
    /// for `missed_heartbeat_limit` heartbeat intervals (and whose attempt
    /// has been running at least that long, so an idle executor's silence
    /// before the task started is never charged) is declared lost and
    /// killed — [`crate::context::SpangleContext::kill_executor`] discards
    /// its blocks and seats a replacement, and the attempt's failure event
    /// routes through the existing executor-loss recovery. *Watchdog*: an
    /// attempt whose executor keeps heartbeating while its progress
    /// counter stays frozen past the watchdog interval gets a speculative
    /// duplicate on another executor; first completion wins, exactly like
    /// a straggler race. Detection is new here — recovery semantics are
    /// the PR 4 / PR 7 paths unchanged.
    fn health_tick(&mut self, monitor: &mut HealthMonitor) -> Result<(), JobError> {
        self.drain_due_backoff()?;
        let cfg = self.ctx.inner.health;
        if !cfg.enabled {
            return Ok(());
        }
        monitor.ensure_executors(self.ctx.num_executors());
        let board = self.ctx.inner.pool.health_board();
        let now = Instant::now();

        // Everything of this job actually running right now: per-executor
        // earliest run stamp (for loss), plus the lone original singleton
        // attempts (the only watchdog/speculation candidates).
        let mut busy: HashMap<usize, Instant> = HashMap::new();
        let mut watch: Vec<(usize, usize, usize, usize, Instant)> = Vec::new();
        for (idx, stage) in self.stages.iter().enumerate() {
            if stage.state != StageState::Running {
                continue;
            }
            for (&partition, attempts) in &stage.inflight {
                let lone_original = matches!(&attempts[..], [a] if !a.speculative && a.singleton);
                for a in attempts {
                    let Some((executor, since)) = self.ctx.inner.pool.executor_running(&a.token)
                    else {
                        continue;
                    };
                    let earliest = busy.entry(executor).or_insert(since);
                    if since < *earliest {
                        *earliest = since;
                    }
                    if lone_original {
                        watch.push((executor, idx, partition, a.attempt, since));
                    }
                }
            }
        }

        let loss = cfg.loss_threshold();
        let lost: Vec<usize> = busy
            .iter()
            .filter(|&(&e, &since)| {
                now.duration_since(since) > loss && board.heartbeat_age(e) > loss
            })
            .map(|(&e, _)| e)
            .collect();
        for executor in lost {
            let interval = cfg.heartbeat_interval.as_nanos().max(1);
            let missed = (board.heartbeat_age(executor).as_nanos() / interval) as u64;
            self.ctx
                .metrics()
                .add(MetricField::HeartbeatsMissed, missed);
            // The kill cancels the running attempt and resets the slot's
            // heartbeat; the attempt's executor-lost event replays it on
            // the replacement through the standard recovery path.
            self.ctx.kill_executor(executor);
        }

        if self.ctx.num_executors() >= 2 {
            let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
            let mut trips: Vec<(usize, usize, usize)> = Vec::new();
            for (executor, idx, partition, attempt, since) in watch {
                let key = (self.job_id, idx, partition);
                seen.insert(key);
                let progress = board.progress_value(executor);
                let obs = monitor.observed.entry(key).or_insert(ProgressObs {
                    progress,
                    since: now,
                    tripped: false,
                });
                if progress != obs.progress {
                    // The executor ticked since we last looked: rebaseline.
                    obs.progress = progress;
                    obs.since = now;
                    obs.tripped = false;
                } else if !obs.tripped
                    && now.duration_since(obs.since.max(since)) > cfg.watchdog_interval
                {
                    obs.tripped = true;
                    trips.push((idx, partition, attempt));
                }
            }
            monitor
                .observed
                .retain(|key, _| key.0 != self.job_id || seen.contains(key));
            for (idx, partition, attempt) in trips {
                self.stages[idx].watchdog_trips += 1;
                self.stages[idx].tasks_speculated += 1;
                self.ctx.metrics().add(MetricField::WatchdogTrips, 1);
                self.ctx.metrics().add(MetricField::TasksSpeculated, 1);
                self.submit_speculative(idx, partition, attempt)?;
            }
        }
        Ok(())
    }

    /// The speculation scan: for every running stage with completed
    /// samples, any lone, original, singleton attempt whose *running*
    /// time exceeds the configured multiple of the stage's median
    /// completed duration (and the floor) gets a duplicate on another
    /// executor. Running time is measured from the pool's run stamp, not
    /// from submission: a task still parked in a queue (behind a
    /// straggler, say) is not itself slow and is never duplicated — the
    /// straggler in front of it is.
    fn check_speculation(&mut self) -> Result<(), JobError> {
        let cfg = self.ctx.inner.speculation;
        if !cfg.enabled || self.ctx.num_executors() < 2 {
            return Ok(());
        }
        let now = Instant::now();
        let mut launch: Vec<(usize, usize, usize)> = Vec::new();
        for (idx, stage) in self.stages.iter().enumerate() {
            if stage.state != StageState::Running || stage.durations.is_empty() {
                continue;
            }
            let median = median_nanos(&stage.durations);
            let threshold =
                Duration::from_nanos((median as f64 * cfg.multiplier) as u64).max(cfg.min_runtime);
            for (&partition, attempts) in &stage.inflight {
                let [a] = &attempts[..] else { continue };
                if a.speculative || !a.singleton {
                    continue;
                }
                let Some((_, running_since)) = self.ctx.inner.pool.executor_running(&a.token)
                else {
                    continue;
                };
                if now.duration_since(running_since) > threshold {
                    launch.push((idx, partition, a.attempt));
                }
            }
        }
        for (idx, partition, attempt) in launch {
            self.stages[idx].tasks_speculated += 1;
            self.ctx.metrics().add(MetricField::TasksSpeculated, 1);
            self.submit_speculative(idx, partition, attempt)?;
        }
        Ok(())
    }

    /// All tasks of a stage completed: publish its shuffle, account it,
    /// and wake children that were waiting on it.
    fn finish_stage(&mut self, idx: usize) -> Result<(), JobError> {
        let snap = self.ctx.metrics_snapshot();
        let stage = &mut self.stages[idx];
        stage.state = StageState::Finished;
        self.running -= 1;
        let wall_nanos = stage
            .started
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        if let Some(shuffle_id) = stage.shuffle_id {
            // The returned missing-map list can be non-empty here: an
            // executor killed between a map task's completion and stage
            // close already took that output with it. The first dependent
            // fetch surfaces it as FetchFailed and recovery re-runs
            // exactly those maps, so no proactive action is needed.
            let _ = self
                .ctx
                .inner
                .shuffle
                .mark_completed(shuffle_id, stage.num_tasks);
            self.owned.remove(&shuffle_id);
        }
        self.reports.push(StageReport {
            stage_id: stage.stage_id,
            shuffle_id: stage.shuffle_id,
            num_tasks: stage.num_tasks,
            tasks_stolen: stage.tasks_stolen,
            outcome: StageOutcome::Ran,
            task_nanos: stage.task_nanos,
            wall_nanos,
            fetch_failures: stage.fetch_failures,
            map_partitions_recomputed: stage.recovered_maps,
            stages_fused: stage.fused_chains,
            shuffles_elided: stage.elided_shuffles,
            partitions_coalesced: stage.partitions_coalesced,
            tasks_speculated: stage.tasks_speculated,
            speculation_wins: stage.speculation_wins,
            tasks_cancelled: stage.tasks_cancelled,
            watchdog_trips: stage.watchdog_trips,
            backoff_nanos: stage.backoff_nanos,
            blocks_spilled: (snap.blocks_spilled - stage.spill_baseline.0) as usize,
            blocks_rehydrated: (snap.blocks_rehydrated - stage.spill_baseline.1) as usize,
            spill_bytes: snap.spill_bytes - stage.spill_baseline.2,
        });
        self.satisfy_children(idx)
    }

    /// Decrements the waiting count of every child parked on this (now
    /// satisfied) stage and submits those that became ready. Also replays
    /// any running child's attempts that were parked on a fetch failure
    /// against this stage's shuffle — its lost map output is whole again.
    fn satisfy_children(&mut self, idx: usize) -> Result<(), JobError> {
        let children = self.stages[idx].children.clone();
        for child in children {
            if self.stages[child].state == StageState::Waiting {
                self.stages[child].waiting_on -= 1;
                if self.stages[child].waiting_on == 0 {
                    self.submit_stage(child)?;
                }
            }
        }
        if let Some(shuffle_id) = self.stages[idx].shuffle_id {
            let children = self.stages[idx].children.clone();
            for child in children {
                self.flush_parked(child, shuffle_id)?;
            }
        }
        Ok(())
    }

    /// Re-submits every attempt of `idx` parked on `shuffle_id`, keeping
    /// the original attempt numbers (the failures were the parent's
    /// fault).
    fn flush_parked(&mut self, idx: usize, shuffle_id: usize) -> Result<(), JobError> {
        let mut parked = Vec::new();
        self.stages[idx].pending_retry.retain(|entry| {
            let matches = entry.2 == shuffle_id;
            if matches {
                parked.push((entry.0, entry.1));
            }
            !matches
        });
        for (partition, attempt) in parked {
            self.resubmit_after_backoff(idx, partition, attempt)?;
        }
        Ok(())
    }

    /// Handles a [`TaskError::FetchFailed`]: parks the failed attempt
    /// (without decrementing the stage's outstanding count or charging its
    /// attempt budget), then makes sure the parent shuffle's missing map
    /// output is being rebuilt — by claiming the recovery and resubmitting
    /// exactly the lost map partitions, by watching another job's
    /// in-flight rebuild, or by finding it already whole again.
    fn recover_fetch_failure(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
        shuffle_id: usize,
        map_id: usize,
    ) -> Result<(), JobError> {
        self.ctx.metrics().add(MetricField::FetchFailures, 1);
        self.stages[stage_idx].fetch_failures += 1;
        self.charge_resubmission(
            stage_idx,
            partition,
            attempt,
            TaskError::FetchFailed { shuffle_id, map_id },
        )?;
        self.stages[stage_idx]
            .pending_retry
            .push((partition, attempt, shuffle_id));
        let parent_idx = self
            .stages
            .iter()
            .position(|s| s.shuffle_id == Some(shuffle_id))
            .expect("fetch failure names a shuffle outside the job's stage graph");
        if matches!(
            self.stages[parent_idx].state,
            StageState::Running | StageState::External
        ) {
            // Already being handled: an earlier fetch failure started a
            // recovery run (Running) or subscribed to another job's
            // (External). The parked attempt flushes when it resolves.
            //
            // Any other state proceeds to claim the recovery — including
            // `Idle`: demand-driven activation never descends past a
            // skipped stage, so a grandparent shuffle of an all-skipped
            // ancestry is first reached *here*, when a recovery task
            // trips over its holes.
            return Ok(());
        }
        let num_maps = self.stages[parent_idx].num_tasks;
        match self.ctx.inner.shuffle.claim_recovery(shuffle_id, num_maps) {
            RecoveryClaim::Owner { missing } => self.start_map_recovery(parent_idx, missing),
            RecoveryClaim::InFlight => {
                self.watch(parent_idx, shuffle_id);
                Ok(())
            }
            RecoveryClaim::Recovered => self.flush_parked(stage_idx, shuffle_id),
        }
    }

    /// Re-runs the `missing` map partitions of an already-completed map
    /// stage from lineage: the stage goes back to `Running` under a fresh
    /// stage id with only the missing tasks outstanding — surviving
    /// partitions' output is reused, never recomputed.
    fn start_map_recovery(&mut self, idx: usize, missing: Vec<usize>) -> Result<(), JobError> {
        let shuffle_id = self.stages[idx]
            .shuffle_id
            .expect("map recovery targets a shuffle stage");
        self.owned.insert(shuffle_id);
        let snap = self.ctx.metrics_snapshot();
        let stage = &mut self.stages[idx];
        stage.stage_id = self.ctx.new_stage_id();
        stage.state = StageState::Running;
        stage.remaining = missing.len();
        stage.task_nanos = 0;
        stage.tasks_stolen = 0;
        stage.fetch_failures = 0;
        stage.recovered_maps = missing.len();
        stage.inflight.clear();
        stage.durations.clear();
        stage.finished.clear();
        stage.tasks_speculated = 0;
        stage.speculation_wins = 0;
        stage.tasks_cancelled = 0;
        stage.watchdog_trips = 0;
        stage.backoff_nanos = 0;
        stage.spill_baseline = (
            snap.blocks_spilled,
            snap.blocks_rehydrated,
            snap.spill_bytes,
        );
        stage.started = Some(Instant::now());
        self.ctx.metrics().add(MetricField::StagesRun, 1);
        self.ctx
            .metrics()
            .add(MetricField::MapPartitionsRecomputed, missing.len() as u64);
        self.running += 1;
        self.max_concurrent = self.max_concurrent.max(self.running);
        for partition in missing {
            self.submit_task(idx, partition, 0)?;
        }
        Ok(())
    }

    /// Spends one unit of the job's recovery budget; when the budget is
    /// gone the job aborts (a permanently poisoned shuffle must not loop
    /// forever).
    fn charge_resubmission(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
        err: TaskError,
    ) -> Result<(), JobError> {
        if self.resubmissions_left == 0 {
            return Err(self.abort(stage_idx, partition, attempt + 1, err));
        }
        self.resubmissions_left -= 1;
        Ok(())
    }

    /// Aborts the job: releases every shuffle claim the job still holds
    /// (dropping their partial map output) so other or future jobs can
    /// re-claim and run those map stages.
    fn abort(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempts: usize,
        last_error: TaskError,
    ) -> JobError {
        // Interrupt every still-running attempt at its next cancellation
        // point: an abort (or expired deadline) must free the executors,
        // not wait out wedged bodies.
        self.cancel_all_inflight();
        for shuffle_id in self.owned.drain() {
            self.ctx.inner.shuffle.abandon(shuffle_id);
        }
        JobError {
            job_id: self.job_id,
            stage_id: self.stages[stage_idx].stage_id,
            partition,
            attempts,
            last_error,
        }
    }

    /// Resolves a successful job: records its report (before the handle
    /// resolves), then hands the caller its results.
    fn finish(mut self) {
        self.record(JobOutcome::Succeeded);
        let results: Vec<ErasedResult> = std::mem::take(&mut self.results)
            .into_iter()
            .map(|r| r.expect("job finished with a missing partition result"))
            .collect();
        // Release the stage graph (and the lineage Arcs its work closures
        // capture) BEFORE unblocking the caller: shuffle garbage
        // collection relies on the caller's drop being the last reference.
        self.stages.clear();
        let _ = self.done.send(Ok(results));
    }

    /// Resolves an aborted job: every stage still in flight gets a
    /// [`StageOutcome::Aborted`] entry so its partial task time and steal
    /// counts are not lost, the report is recorded with
    /// [`JobOutcome::Aborted`], and only then does the caller's handle
    /// resolve with the error — `last_job_report()` after a failed action
    /// therefore describes the failed job, not the previous one.
    fn fail(self, err: JobError) {
        self.fail_with(JobOutcome::Aborted, err);
    }

    /// [`fail`](Self::fail) with an explicit outcome: the deadline path
    /// records [`JobOutcome::Deadlined`] instead of `Aborted` while
    /// sharing the abort bookkeeping (in-flight stage reports, shuffle
    /// abandon already done by the caller, handle resolution last).
    fn fail_with(mut self, outcome: JobOutcome, err: JobError) {
        let snap = self.ctx.metrics_snapshot();
        let aborted: Vec<StageReport> = self
            .stages
            .iter()
            .filter(|stage| stage.state == StageState::Running)
            .map(|stage| StageReport {
                stage_id: stage.stage_id,
                shuffle_id: stage.shuffle_id,
                num_tasks: stage.num_tasks,
                tasks_stolen: stage.tasks_stolen,
                outcome: StageOutcome::Aborted,
                task_nanos: stage.task_nanos,
                wall_nanos: stage
                    .started
                    .map(|s| s.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
                fetch_failures: stage.fetch_failures,
                map_partitions_recomputed: stage.recovered_maps,
                stages_fused: stage.fused_chains,
                shuffles_elided: stage.elided_shuffles,
                partitions_coalesced: stage.partitions_coalesced,
                tasks_speculated: stage.tasks_speculated,
                speculation_wins: stage.speculation_wins,
                tasks_cancelled: stage.tasks_cancelled,
                watchdog_trips: stage.watchdog_trips,
                backoff_nanos: stage.backoff_nanos,
                blocks_spilled: (snap.blocks_spilled - stage.spill_baseline.0) as usize,
                blocks_rehydrated: (snap.blocks_rehydrated - stage.spill_baseline.1) as usize,
                spill_bytes: snap.spill_bytes - stage.spill_baseline.2,
            })
            .collect();
        self.reports.extend(aborted);
        self.record(outcome);
        // As in `finish`: the caller must hold the last lineage references
        // once it unblocks.
        self.stages.clear();
        let _ = self.done.send(Err(err));
    }

    /// Records the job's [`JobReport`] on the context's metrics.
    fn record(&mut self, outcome: JobOutcome) {
        self.ctx.metrics().record_job(JobReport {
            job_id: self.job_id,
            outcome,
            priority: self.priority,
            stages: std::mem::take(&mut self.reports),
            max_concurrent_stages: self.max_concurrent,
            executor_busy_nanos: std::mem::take(&mut self.executor_busy),
            queue_wait_nanos: self.queue_wait_nanos,
            admission_wait_nanos: self.admission_wait_nanos,
            wall_nanos: self.started.elapsed().as_nanos() as u64,
        });
    }
}

impl Stage {
    /// Whether dependents of this stage can read its shuffle output.
    fn is_satisfied(&self) -> bool {
        matches!(self.state, StageState::Finished | StageState::Skipped)
    }
}

/// Median of the completed-attempt durations, in nanoseconds (upper
/// median for even counts — speculation prefers the conservative side).
fn median_nanos(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::SpeculationConfig;
    use crate::metrics::{JobOutcome, StageOutcome};
    use crate::rdd::pair::PairRdd;
    use crate::{HashPartitioner, SpangleContext};
    use std::sync::Arc;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn reduce_by_key_merges_all_values() {
        let ctx = SpangleContext::new(3);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1)).collect();
        let rdd = ctx.parallelize(pairs, 5);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(4)), |a, b| a + b);
        let out = sorted(reduced.collect().unwrap());
        assert_eq!(out, (0u64..10).map(|k| (k, 10u64)).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_job_runs_two_stages_and_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        reduced.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 2, "one map stage + one result stage");
        assert_eq!(delta.tasks_run, 4 + 3);
        assert!(delta.shuffle_write_bytes > 0);
        assert!(delta.shuffle_read_bytes > 0);
    }

    #[test]
    fn second_action_skips_the_completed_map_stage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        reduced.collect().unwrap();
        let before = ctx.metrics_snapshot();
        reduced.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 1, "map stage must be skipped");
        assert_eq!(delta.stages_skipped, 1);
        assert_eq!(delta.shuffle_write_bytes, 0);
        let report = ctx.last_job_report().unwrap();
        assert_eq!(report.stages_run(), 1);
        assert_eq!(report.stages_skipped(), 1);
        assert_eq!(report.outcome, JobOutcome::Succeeded);
    }

    #[test]
    fn join_produces_the_cross_product_per_key() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize(vec![(1u64, "a"), (1, "b"), (2, "c")], 2);
        let right = ctx.parallelize(vec![(1u64, 10u64), (2, 20), (3, 30)], 2);
        // &str is not MemSize; map to String first.
        let left = left.map(|(k, v)| (k, v.to_string()));
        let joined = left.join(&right, Arc::new(HashPartitioner::new(2)));
        let out = sorted(joined.collect().unwrap());
        assert_eq!(
            out,
            vec![
                (1, ("a".to_string(), 10)),
                (1, ("b".to_string(), 10)),
                (2, ("c".to_string(), 20)),
            ]
        );
    }

    #[test]
    fn cogroup_of_copartitioned_sides_is_shuffle_free() {
        // Asserts the shuffle-elision rewrite itself, so pin it on
        // regardless of SPANGLE_DISABLE_PLANNER.
        let ctx = SpangleContext::builder()
            .executors(2)
            .elide_shuffles(true)
            .build();
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(4));
        let left = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4)
            .partition_by(p.clone());
        let right = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 4)
            .partition_by(p.clone());
        // Materialise both sides' shuffles first.
        left.persist().count().unwrap();
        right.persist().count().unwrap();

        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, p);
        let n = grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(n, 8);
        assert_eq!(delta.shuffle_write_bytes, 0, "local join must not shuffle");
        assert_eq!(delta.stages_run, 1, "local join runs in a single stage");
    }

    #[test]
    fn cogroup_of_unaligned_sides_shuffles_both() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4);
        let right = ctx.parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 5);
        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, Arc::new(HashPartitioner::new(4)));
        grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 3, "two map stages + result stage");
        assert!(delta.shuffle_write_bytes > 0);
    }

    /// The event-driven scheduler's signature behaviour: the two map
    /// stages of an unaligned join have no edge between them, so both are
    /// submitted before any task completes and run concurrently.
    #[test]
    fn unaligned_join_runs_sibling_map_stages_concurrently() {
        let ctx = SpangleContext::new(4);
        let left = ctx.parallelize((0u64..400).map(|i| (i % 16, i)).collect(), 4);
        let right = ctx.parallelize((0u64..400).map(|i| (i % 16, i * 2)).collect(), 5);
        let joined = left.join(&right, Arc::new(HashPartitioner::new(4)));
        let n = joined.count().unwrap();
        assert!(n > 0);
        let report = ctx.last_job_report().unwrap();
        assert!(
            report.max_concurrent_stages >= 2,
            "sibling map stages must overlap, report was: {report}"
        );
        assert_eq!(report.stages.len(), 3);
    }

    /// When one sibling map stage exhausts its retries the job aborts
    /// without deadlocking, and every shuffle claim the job held is
    /// released so a rerun can claim and complete them. The attempt limit
    /// comes from the builder, not a magic constant.
    #[test]
    fn sibling_stage_failure_aborts_and_releases_claims() {
        let ctx = SpangleContext::builder()
            .executors(2)
            .max_task_attempts(3)
            .build();
        let left = ctx.parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4);
        let right = ctx.parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 5);
        // Kill one left-side map task exactly as often as the attempt
        // limit: the first job aborts, the injector drains, a rerun works.
        ctx.failure_injector()
            .fail_task(left.id(), 1, ctx.max_task_attempts());
        let grouped = left.cogroup(&right, Arc::new(HashPartitioner::new(4)));
        let err = grouped.count().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.attempts, ctx.max_task_attempts());
        assert!(ctx.failure_injector().is_drained());
        // The aborted job still recorded a report.
        let report = ctx.last_job_report().unwrap();
        assert_eq!(report.job_id, err.job_id);
        assert_eq!(report.outcome, JobOutcome::Aborted);
        assert!(report.stages_aborted() >= 1);
        // Claims were abandoned, not leaked: the rerun owns both map
        // stages again and completes.
        let n = grouped.count().unwrap();
        assert_eq!(n, 8);
    }

    /// Two jobs racing over the same shuffled RDD: the claim protocol
    /// elects one owner for the map stage, the other job waits for (or
    /// reuses) its output, and the maps run exactly once in total.
    #[test]
    fn concurrent_jobs_run_a_shared_map_stage_exactly_once() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        let (a, b) = {
            let ra = reduced.clone();
            let rb = reduced.clone();
            let ta = std::thread::spawn(move || sorted(ra.collect().unwrap()));
            let tb = std::thread::spawn(move || sorted(rb.collect().unwrap()));
            (ta.join().unwrap(), tb.join().unwrap())
        };
        assert_eq!(a, b);
        assert_eq!(a, (0u64..6).map(|k| (k, 10u64)).collect::<Vec<_>>());
        let delta = ctx.metrics_snapshot() - before;
        // One map stage (4 tasks) ran once; each job ran its own result
        // stage (3 tasks); the non-owner skipped the map stage.
        assert_eq!(delta.tasks_run, 4 + 3 + 3, "map tasks must not run twice");
        assert_eq!(delta.stages_run, 3);
        assert_eq!(delta.stages_skipped, 1);
    }

    #[test]
    fn injected_task_failure_is_retried_and_job_succeeds() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 2, 2);
        let before = ctx.metrics_snapshot();
        let sum: u64 = rdd.reduce(|a, b| a + b).unwrap().unwrap();
        assert_eq!(sum, 190);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.task_retries, 2);
        assert!(ctx.failure_injector().is_drained());
    }

    /// The attempt limit is builder-configurable, and the exhausted job's
    /// error reflects whatever limit the context was built with.
    #[test]
    fn exhausted_attempts_abort_the_job() {
        for limit in [2usize, 4] {
            let ctx = SpangleContext::builder()
                .executors(2)
                .max_task_attempts(limit)
                .build();
            let rdd = ctx.parallelize((0u64..20).collect(), 4);
            ctx.failure_injector().fail_task(rdd.id(), 1, 100);
            let err = rdd.collect().unwrap_err();
            assert_eq!(err.partition, 1);
            assert_eq!(err.attempts, limit);
        }
    }

    #[test]
    fn panicking_task_surfaces_as_job_error() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..10).collect(), 2);
        let bad = rdd.map(|x| {
            assert!(x != 7, "poison element");
            x
        });
        let err = bad.collect().unwrap_err();
        match err.last_error {
            crate::TaskError::Panicked(msg) => assert!(msg.contains("poison"), "msg was: {msg}"),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn evicted_cached_partition_is_recomputed_from_lineage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..100).collect(), 4).map(|x| x * 3);
        rdd.persist();
        let first = rdd.collect().unwrap();
        // All four partitions cached now; evict one and recompute.
        assert!(ctx.evict_cached_partition(rdd.id(), 1));
        let before = ctx.metrics_snapshot();
        let second = rdd.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(first, second);
        assert_eq!(delta.cache_hits, 3);
        assert_eq!(delta.cache_misses, 1);
    }

    #[test]
    fn cached_shuffled_rdd_survives_without_rerunning_maps() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..40).map(|i| (i % 4, 1u64)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        reduced.persist();
        reduced.count().unwrap();
        let before = ctx.metrics_snapshot();
        let out = sorted(reduced.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.shuffle_read_bytes, 0, "reads come from cache");
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let ctx = SpangleContext::new(2);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(3));
        let rdd = ctx
            .parallelize((0u64..30).map(|i| (i, i)).collect(), 3)
            .partition_by(p.clone());
        let mapped = rdd.map_values(|v| v * 2);
        assert_eq!(
            mapped.partitioner_sig(),
            Some(crate::partitioner::Partitioner::<u64>::sig(&*p))
        );
        // And filtering keeps it too.
        let filtered = mapped.filter(|(_, v)| v % 4 == 0);
        assert!(filtered.partitioner_sig().is_some());
    }

    #[test]
    fn chained_shuffles_run_in_topological_order() {
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
        // Two chained shuffles: reduce then re-key and reduce again.
        let once = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let twice = once
            .map(|(k, v)| (k % 2, v))
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        let out = sorted(twice.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 30), (1, 30)]);
        assert_eq!(delta.stages_run, 3);
        // Chained stages depend on each other, so the event-driven
        // scheduler must still run them one at a time, parents first.
        let report = ctx.last_job_report().unwrap();
        assert_eq!(report.max_concurrent_stages, 1);
        let order: Vec<Option<usize>> = report.stages.iter().map(|s| s.shuffle_id).collect();
        assert_eq!(order.len(), 3);
        assert!(order[0].is_some() && order[1].is_some());
        assert!(
            order[0].unwrap() < order[1].unwrap(),
            "first shuffle must complete before the one that reads it"
        );
        assert_eq!(order[2], None, "result stage completes last");
    }

    /// Deliberately skewed partition durations: the executor owning the
    /// slow partitions backs up, its idle sibling steals the backlog, and
    /// the steals are charged as remote in the job report.
    #[test]
    fn skewed_partitions_are_stolen_and_charged_remote() {
        // Speculation would hand the idle executor duplicate attempts
        // instead of letting it steal, so pin it off: this test is about
        // the steal path.
        let ctx = SpangleContext::builder()
            .executors(2)
            .speculation(SpeculationConfig {
                enabled: false,
                ..SpeculationConfig::default()
            })
            .build();
        // 6 partitions of 10 elements on 2 executors: partitions 0/2/4
        // (all placed on executor 0) sleep once, partitions 1/3/5 are
        // instant — executor 1 drains its own queue and must steal.
        let rdd = ctx.parallelize((0u64..60).collect(), 6).map(|x| {
            if (x / 10) % 2 == 0 && x % 10 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            x
        });
        let before = ctx.metrics_snapshot();
        assert_eq!(rdd.count().unwrap(), 60);
        let delta = ctx.metrics_snapshot() - before;
        let report = ctx.last_job_report().unwrap();
        assert!(
            report.tasks_stolen() >= 1,
            "idle executor must steal from the skewed backlog, report was: {report}"
        );
        assert_eq!(delta.tasks_stolen, report.tasks_stolen() as u64);
        assert_eq!(report.executor_busy_nanos.len(), 2);
        assert!(
            report.executor_busy_nanos.iter().sum::<u64>() > 0,
            "busy time must be attributed"
        );
    }

    /// The locality guarantee: a perfectly balanced co-partitioned join
    /// (one task per executor at every stage) never steals — every task
    /// runs on the executor its partition is placed on, so the join stays
    /// genuinely local.
    #[test]
    fn balanced_copartitioned_join_never_steals() {
        // Asserts the shuffle-elision rewrite itself, so pin it on
        // regardless of SPANGLE_DISABLE_PLANNER.
        let ctx = SpangleContext::builder()
            .executors(4)
            .elide_shuffles(true)
            .build();
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(4));
        let left = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4)
            .partition_by(p.clone());
        let right = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 4)
            .partition_by(p.clone());
        let before = ctx.metrics_snapshot();
        left.persist().count().unwrap();
        right.persist().count().unwrap();

        let before_join = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, p);
        let n = grouped.count().unwrap();
        let join_delta = ctx.metrics_snapshot() - before_join;
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(n, 8);
        let report = ctx.last_job_report().unwrap();
        assert_eq!(
            report.tasks_stolen(),
            0,
            "balanced one-task-per-executor stages must stay local: {report}"
        );
        assert_eq!(
            delta.tasks_stolen, 0,
            "no stage of this balanced pipeline may steal"
        );
        assert_eq!(
            join_delta.shuffle_write_bytes, 0,
            "local join must not shuffle"
        );
    }

    #[test]
    fn group_by_key_collects_every_value() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..12).map(|i| (i % 3, i)).collect(), 3);
        let grouped = rdd.group_by_key(Arc::new(HashPartitioner::new(2)));
        let mut out = grouped.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        for (k, mut vs) in out {
            vs.sort();
            assert_eq!(vs, (0..4).map(|j| k + 3 * j).collect::<Vec<_>>());
        }
    }

    /// Regression (abort-path): an aborted job must record a report of its
    /// own — outcome `Aborted`, the in-flight stage marked
    /// `StageOutcome::Aborted`, busy time attributed — instead of leaving
    /// `last_job_report()` pointing at the previous job.
    #[test]
    fn aborted_job_records_its_own_report() {
        let ctx = SpangleContext::builder()
            .executors(2)
            .max_task_attempts(2)
            .build();
        // A successful job first, so a missing abort report would surface
        // as this stale one.
        let ok = ctx.parallelize((0u64..8).collect(), 2);
        ok.count().unwrap();
        let stale = ctx.last_job_report().unwrap();

        let rdd = ctx.parallelize((0u64..40).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 1, 100);
        let err = rdd.collect().unwrap_err();
        let report = ctx.last_job_report().unwrap();
        assert_ne!(report.job_id, stale.job_id, "the abort must be recorded");
        assert_eq!(report.job_id, err.job_id);
        assert_eq!(report.outcome, JobOutcome::Aborted);
        assert_eq!(report.stages_aborted(), 1);
        assert!(
            report
                .stages
                .iter()
                .any(|s| s.outcome == StageOutcome::Aborted && s.task_nanos > 0),
            "the aborted stage's partial task time must be accounted: {report}"
        );
        assert!(
            report.executor_busy_nanos.iter().sum::<u64>() > 0,
            "successful sibling attempts must appear in busy accounting"
        );
    }

    /// Regression (abort-path): abandoning a shuffle mid-abort drops the
    /// partial map output, so an aborted job with no rerun leaves zero
    /// resident shuffle bytes behind.
    #[test]
    fn aborted_shuffle_job_leaves_no_resident_bytes() {
        let ctx = SpangleContext::builder()
            .executors(2)
            .max_task_attempts(2)
            .build();
        let rdd = ctx.parallelize((0u64..40).map(|i| (i % 4, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        // Partition 1's map task always fails; partitions 0/2/3 write
        // their buckets before the abort.
        ctx.failure_injector().fail_task(rdd.id(), 1, 100);
        let err = reduced.collect().unwrap_err();
        assert!(matches!(err.last_error, crate::TaskError::Injected));
        assert_eq!(
            ctx.shuffle_resident_bytes(),
            0,
            "partial map output must be dropped with the abandoned claim"
        );
        assert_eq!(ctx.last_job_report().unwrap().outcome, JobOutcome::Aborted);
    }

    /// Jobs submitted inside `run_with_priority` carry the priority into
    /// their reports; the scope restores the previous priority on exit.
    #[test]
    fn run_with_priority_stamps_the_job_report() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..8).collect(), 2);
        let n = ctx.run_with_priority(7, || rdd.count().unwrap());
        assert_eq!(n, 8);
        assert_eq!(ctx.last_job_report().unwrap().priority, 7);
        rdd.count().unwrap();
        assert_eq!(
            ctx.last_job_report().unwrap().priority,
            0,
            "priority scope must not leak out of run_with_priority"
        );
    }
}
