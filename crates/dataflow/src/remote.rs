//! The remote data plane: datasets whose partition *bytes* live in the
//! executor backend's block stores, referenced from the RDD graph by
//! lightweight handles.
//!
//! Closures cannot be shipped to a worker process, so remote pipelines
//! are built from the named operators of [`crate::ops`]: an RDD element
//! here is a [`ShardHandle`] (or, mid-exchange, a [`BucketRef`]) naming
//! a block in some slot's store, and the closures the scheduler runs are
//! thin drivers that resolve handles to bytes and invoke operators on
//! the worker owning the current slot. Everything else — stages,
//! placement, retries, lineage recovery, speculation, health — is the
//! ordinary engine acting on ordinary (small) elements.
//!
//! Failure semantics per rung:
//! * an operator error is a plain task panic (quarantine-eligible);
//! * a dead *own* worker makes the task spin on its cancellation token
//!   until the health plane declares the slot lost — the unwind is then
//!   an executor loss, not a consumed task attempt;
//! * a failed *peer* bucket fetch (torn frame, short read, dead process,
//!   checksum mismatch) is a typed [`FetchFailedError`] naming the map
//!   partition whose bytes are gone, which resubmits exactly that map
//!   task — the same lineage replay a lost in-memory shuffle block takes.
//!
//! Determinism of the operators plus keyed, namespaced block ids makes
//! replay idempotent: re-running a chain on a live worker answers from
//! its store byte-for-byte, and on a fresh incarnation regenerates the
//! dead process's blocks bit-identically.

use crate::context::SpangleContext;
use crate::executor::{self, CancelledError};
use crate::health::jittered_backoff;
use crate::memsize::{MemSize, SpillCursor};
use crate::ops;
use crate::partitioner::ModPartitioner;
use crate::rdd::pair::PairRdd;
use crate::rdd::{Dependency, Rdd};
use crate::shuffle::FetchFailedError;
use crate::wire::{self, BlockKey, BlockMeta, OpInput};
use crate::JobError;
use std::panic::panic_any;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A reference to one partition's encoded bytes in a worker store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHandle {
    /// Executor slot whose store holds the block.
    pub slot: u64,
    /// Slot incarnation the block was computed on; a mismatch with the
    /// live epoch means the bytes died with the process.
    pub epoch: u64,
    /// Store key (`namespace, partition`), fixed at graph-build time so
    /// replays are idempotent.
    pub key: BlockKey,
    /// Encoded length, for checksum verification on fetch.
    pub len: u64,
    /// FNV-1a of the bytes, verified on every remote fetch.
    pub checksum: u64,
}

/// A reference to one routed bucket travelling through a shuffle: like a
/// [`ShardHandle`] plus the map partition that produced it, so a failed
/// fetch can name the exact map output to regenerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketRef {
    /// Executor slot whose store holds the bucket.
    pub slot: u64,
    /// Slot incarnation the bucket was computed on.
    pub epoch: u64,
    /// Store key of the bucket block.
    pub key: BlockKey,
    /// Encoded length.
    pub len: u64,
    /// FNV-1a of the bytes.
    pub checksum: u64,
    /// Map partition that produced this bucket (the `map_id` a fetch
    /// failure reports).
    pub src_map: u64,
}

macro_rules! u64_spill_codec {
    ($ty:ident { $($field:tt),+ }) => {
        impl MemSize for $ty {
            fn mem_size(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
            fn spillable() -> bool {
                true
            }
            fn spill_encode(&self, out: &mut Vec<u8>) {
                $(out.extend_from_slice(&self.$field.to_le_bytes());)+
                out.extend_from_slice(&self.key.0.to_le_bytes());
                out.extend_from_slice(&self.key.1.to_le_bytes());
            }
            fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
                $(let $field = input.u64()?;)+
                let key = (input.u64()?, input.u64()?);
                Some($ty { $($field,)+ key })
            }
        }
    };
}

u64_spill_codec!(ShardHandle {
    slot,
    epoch,
    len,
    checksum
});
u64_spill_codec!(BucketRef {
    slot,
    epoch,
    len,
    checksum,
    src_map
});

/// How many times a peer fetch retries a dead/torn connection (with
/// seeded backoff) before declaring the bytes unfetchable.
const FETCH_RETRIES: usize = 5;

/// How long a task waits on its own unreachable worker for the health
/// plane to notice before failing outright. Generous: this ceiling is
/// only reached on the degraded ladder rung where health monitoring is
/// disabled and nobody will ever declare the slot lost.
const OWN_WORKER_DEADLINE: Duration = Duration::from_secs(30);

/// The slot serving the current task. Remote-plane closures only ever
/// run inside scheduled tasks, so this is always installed.
fn my_slot() -> usize {
    executor::current_slot().expect("remote-plane operator invoked outside an executor task")
}

/// Runs a named operator on the *current slot's* worker, waiting out a
/// dead worker until the health plane kills the slot (which cancels this
/// task and reruns it on the replacement incarnation).
fn run_on_own_worker(
    ctx: &SpangleContext,
    slot: usize,
    op: &str,
    args: &[u8],
    inputs: Vec<OpInput>,
    out_keys: &[BlockKey],
) -> Vec<BlockMeta> {
    use crate::backend::BackendError;
    let epoch_at_start = ctx.inner.pool.epoch(slot);
    let deadline = Instant::now() + OWN_WORKER_DEADLINE;
    loop {
        match ctx
            .inner
            .backend
            .run_op(slot, op, args, inputs.clone(), out_keys)
        {
            Ok(metas) => return metas,
            Err(BackendError::Cancelled) => panic_any(CancelledError),
            Err(BackendError::Op(msg)) => {
                // A stale (already-cancelled) task can reach a freshly
                // reseated worker whose store lacks its inputs; that is
                // cancellation, not an operator bug.
                if executor::is_task_cancelled() {
                    panic_any(CancelledError);
                }
                panic!("operator {op:?} failed on executor {slot}: {msg}")
            }
            Err(BackendError::NotFound) => {
                if executor::is_task_cancelled() {
                    panic_any(CancelledError);
                }
                panic!("operator {op:?} failed on executor {slot}: block not found")
            }
            Err(BackendError::WorkerDead | BackendError::Timeout) => {
                // Our own failure domain is gone. Do NOT paper over it:
                // spin on the cancellation token so the loss is detected
                // by missed heartbeats and unwinds as an executor loss.
                // (No `cancellation_point` here — that would stamp this
                // slot's heartbeat and hide the very death we are
                // waiting on.)
                if executor::is_task_cancelled() {
                    panic_any(CancelledError);
                }
                if ctx.inner.pool.epoch(slot) != epoch_at_start {
                    // The slot was already killed and reseated while we
                    // waited; this task is a stale incarnation's.
                    panic_any(CancelledError);
                }
                if Instant::now() > deadline {
                    panic!(
                        "worker process for executor {slot} unreachable and never declared \
                         lost (is health monitoring disabled?)"
                    );
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Reads a block from the *current slot's own* worker, with the same
/// dead-worker discipline as [`run_on_own_worker`]: wait for the health
/// plane rather than burning task attempts on a doomed fast-fail.
fn fetch_own_block(
    ctx: &SpangleContext,
    slot: usize,
    key: BlockKey,
    len: u64,
    checksum: u64,
) -> Vec<u8> {
    use crate::backend::BackendError;
    let epoch_at_start = ctx.inner.pool.epoch(slot);
    let deadline = Instant::now() + OWN_WORKER_DEADLINE;
    loop {
        if executor::is_task_cancelled() {
            panic_any(CancelledError);
        }
        match ctx.inner.backend.fetch(slot, key) {
            Ok(bytes) if bytes.len() as u64 == len && wire::fnv1a64(&bytes) == checksum => {
                return bytes
            }
            // A verification failure on a healthy local read is a torn
            // reply; retry.
            Ok(_) => {}
            Err(BackendError::Cancelled) => panic_any(CancelledError),
            Err(BackendError::NotFound) => panic!("own shard {key:?} vanished from its store"),
            Err(BackendError::Op(msg)) => panic!("own shard {key:?} unreadable: {msg}"),
            Err(BackendError::WorkerDead | BackendError::Timeout) => {
                if ctx.inner.pool.epoch(slot) != epoch_at_start {
                    panic_any(CancelledError);
                }
                if Instant::now() > deadline {
                    panic!(
                        "worker process for executor {slot} unreachable and never declared \
                         lost (is health monitoring disabled?)"
                    );
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Fetches and verifies a referenced block from a peer slot's store,
/// retrying transient connection deaths with seeded backoff.
fn fetch_verified(
    ctx: &SpangleContext,
    slot: usize,
    key: BlockKey,
    len: u64,
    checksum: u64,
) -> Result<Vec<u8>, String> {
    use crate::backend::BackendError;
    let seed = 0xFE7C_4B10 ^ key.0.rotate_left(32) ^ key.1 ^ ((slot as u64) << 48);
    let mut last = String::from("exhausted retries");
    for attempt in 0..FETCH_RETRIES {
        if executor::is_task_cancelled() {
            panic_any(CancelledError);
        }
        match ctx.inner.backend.fetch(slot, key) {
            Ok(bytes) => {
                if bytes.len() as u64 == len && wire::fnv1a64(&bytes) == checksum {
                    return Ok(bytes);
                }
                last = format!("block {key:?} from executor {slot} failed verification");
            }
            Err(BackendError::Cancelled) => panic_any(CancelledError),
            // The worker answered: the block simply is not there (a
            // fresh incarnation). Retrying cannot help.
            Err(BackendError::NotFound) => {
                return Err(format!("block {key:?} not resident on executor {slot}"))
            }
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(jittered_backoff(
            Duration::from_millis(1),
            Duration::from_millis(50),
            attempt,
            seed ^ attempt as u64,
        ));
    }
    Err(last)
}

/// Resolves one input handle for an operator about to run on `slot`:
/// same live slot — pass by store key; anywhere else — fetch the bytes
/// and pass inline. A narrow-position handle that can be neither (its
/// incarnation died and the peer fetch failed) is a plain task failure;
/// the retried task recomputes the chain and mints fresh handles.
fn resolve_input(ctx: &SpangleContext, slot: usize, h: &ShardHandle) -> OpInput {
    if h.slot == slot as u64 && h.epoch == ctx.inner.pool.epoch(slot) {
        return OpInput::Local(h.key);
    }
    match fetch_verified(ctx, h.slot as usize, h.key, h.len, h.checksum) {
        Ok(bytes) => OpInput::Inline(bytes),
        Err(why) => panic!("stale shard handle {:?}: {why}", h.key),
    }
}

fn handle_from(slot: usize, epoch: u64, key: BlockKey, meta: &BlockMeta) -> ShardHandle {
    ShardHandle {
        slot: slot as u64,
        epoch,
        key,
        len: meta.len,
        checksum: meta.checksum,
    }
}

/// A generator dataset: partition `p` holds one [`ShardHandle`] to the
/// output of `op(base_args ++ [p])` run on the computing slot's worker.
pub fn remote_source(
    ctx: &SpangleContext,
    op: &'static str,
    base_args: Vec<u64>,
    parts: usize,
) -> Rdd<ShardHandle> {
    let ns = ctx.new_rdd_id() as u64;
    let ctx2 = ctx.clone();
    ctx.parallelize((0..parts as u64).collect(), parts)
        .map_partitions_with_index(move |p, _seed| {
            let slot = my_slot();
            let epoch = ctx2.inner.pool.epoch(slot);
            let mut args = base_args.clone();
            args.push(p as u64);
            let key = (ns, p as u64);
            let metas =
                run_on_own_worker(&ctx2, slot, op, &ops::pack_args(&args), Vec::new(), &[key]);
            vec![handle_from(slot, epoch, key, &metas[0])]
        })
}

/// Partition-wise transformation: runs `op(base_args ++ [p])` over the
/// partition's handles (resolved in order as operator inputs) and yields
/// one handle to the output block.
pub fn remote_map(
    input: &Rdd<ShardHandle>,
    op: &'static str,
    base_args: Vec<u64>,
) -> Rdd<ShardHandle> {
    let ctx = input.context().clone();
    let ns = ctx.new_rdd_id() as u64;
    input.map_partitions_with_index(move |p, handles| {
        let slot = my_slot();
        let epoch = ctx.inner.pool.epoch(slot);
        let inputs = handles
            .iter()
            .map(|h| resolve_input(&ctx, slot, h))
            .collect();
        let mut args = base_args.clone();
        args.push(p as u64);
        let key = (ns, p as u64);
        let metas = run_on_own_worker(&ctx, slot, op, &ops::pack_args(&args), inputs, &[key]);
        vec![handle_from(slot, epoch, key, &metas[0])]
    })
}

/// Pairs partition `p` of both sides into one partition holding both
/// sides' handles in order (`self`'s, then `other`'s) — the input shape
/// [`remote_exchange`]'s route operators take.
pub fn remote_zip(a: &Rdd<ShardHandle>, b: &Rdd<ShardHandle>) -> Rdd<ShardHandle> {
    a.zip_partitions(b, |left, right| {
        let mut all = left.to_vec();
        all.extend_from_slice(right);
        all
    })
}

/// All-to-all exchange over the worker stores.
///
/// `route_op(route_args; partition handles...)` runs on each input
/// partition's slot, emitting `parts` bucket blocks; the small
/// [`BucketRef`]s ride the engine's ordinary typed shuffle to the reduce
/// side, where `merge_op(merge_args ++ [r]; buckets...)` combines every
/// bucket routed to reduce partition `r` (fetched from peer workers as
/// needed) into one output shard. A bucket whose bytes cannot be fetched
/// panics with a typed [`FetchFailedError`] naming its producing map
/// partition, so the scheduler regenerates exactly that map output.
pub fn remote_exchange(
    input: &Rdd<ShardHandle>,
    route_op: &'static str,
    route_args: Vec<u64>,
    merge_op: &'static str,
    merge_args: Vec<u64>,
    parts: usize,
) -> Rdd<ShardHandle> {
    let ctx = input.context().clone();
    let route_ns = ctx.new_rdd_id() as u64;
    let merge_ns = ctx.new_rdd_id() as u64;

    let ctx_route = ctx.clone();
    let routed: Rdd<(u64, BucketRef)> = input.map_partitions_with_index(move |p, handles| {
        let slot = my_slot();
        let epoch = ctx_route.inner.pool.epoch(slot);
        let inputs: Vec<OpInput> = handles
            .iter()
            .map(|h| resolve_input(&ctx_route, slot, h))
            .collect();
        let out_keys: Vec<BlockKey> = (0..parts)
            .map(|r| (route_ns, (p * parts + r) as u64))
            .collect();
        let metas = run_on_own_worker(
            &ctx_route,
            slot,
            route_op,
            &ops::pack_args(&route_args),
            inputs,
            &out_keys,
        );
        metas
            .iter()
            .zip(&out_keys)
            .enumerate()
            .map(|(r, (meta, key))| {
                (
                    r as u64,
                    BucketRef {
                        slot: slot as u64,
                        epoch,
                        key: *key,
                        len: meta.len,
                        checksum: meta.checksum,
                        src_map: p as u64,
                    },
                )
            })
            .collect()
    });

    let grouped = routed.group_by_key(Arc::new(ModPartitioner::new(parts)));
    let shuffle_id = grouped
        .node
        .dependencies()
        .into_iter()
        .find_map(|dep| match dep {
            Dependency::Shuffle(d) => Some(d.shuffle_id()),
            Dependency::Narrow(_) => None,
        })
        .expect("group_by_key must carry a shuffle dependency");

    grouped.map_partitions_with_index(move |r, groups| {
        let slot = my_slot();
        let epoch = ctx.inner.pool.epoch(slot);
        let mut refs: Vec<BucketRef> = groups
            .iter()
            .flat_map(|(_, bucket_refs)| bucket_refs.iter().copied())
            .collect();
        // Merge in ascending map order so the input sequence (though not
        // the registered ops' arithmetic) is deterministic too.
        refs.sort_unstable_by_key(|b| b.src_map);
        let mut inputs: Vec<OpInput> = Vec::with_capacity(refs.len());
        let mut lost: Vec<usize> = Vec::new();
        for b in &refs {
            if b.slot == slot as u64 && b.epoch == ctx.inner.pool.epoch(slot) {
                inputs.push(OpInput::Local(b.key));
                continue;
            }
            match fetch_verified(&ctx, b.slot as usize, b.key, b.len, b.checksum) {
                Ok(bytes) => inputs.push(OpInput::Inline(bytes)),
                Err(_) => lost.push(b.src_map as usize),
            }
        }
        if let Some(&first) = lost.first() {
            // These buckets' bytes are gone (dead worker, torn
            // connection, lost block). The driver-side shuffle records
            // for their maps are still whole — only the payloads died
            // with the process — so drop every affected record in one
            // round, then fail typed: recovery re-runs exactly those map
            // partitions, regenerating the buckets on live incarnations.
            for &map_id in &lost {
                ctx.inner.shuffle.discard_map_output(shuffle_id, map_id);
            }
            panic_any(FetchFailedError {
                shuffle_id,
                map_id: first,
            });
        }
        let mut args = merge_args.clone();
        args.push(r as u64);
        let key = (merge_ns, r as u64);
        let metas = run_on_own_worker(&ctx, slot, merge_op, &ops::pack_args(&args), inputs, &[key]);
        vec![handle_from(slot, epoch, key, &metas[0])]
    })
}

/// Materialises a remote pair dataset on the driver: every shard is
/// decoded as a pair block and the union is returned sorted by key.
pub fn remote_collect_pairs(input: &Rdd<ShardHandle>) -> Result<Vec<(u64, u64)>, JobError> {
    let ctx = input.context().clone();
    let fetched = input.map_partitions_with_index(move |_p, handles| {
        let slot = my_slot();
        handles
            .iter()
            .flat_map(|h| {
                let bytes = match resolve_input(&ctx, slot, h) {
                    OpInput::Inline(bytes) => bytes,
                    OpInput::Local(key) => fetch_own_block(&ctx, slot, key, h.len, h.checksum),
                };
                ops::decode_pairs(&bytes).expect("shard is not a pair block")
            })
            .collect()
    });
    let mut pairs = fetched.collect()?;
    pairs.sort_unstable();
    Ok(pairs)
}

/// One fixed-point PageRank iteration over the remote plane: routes each
/// page's rank shares with `pr.contrib` and re-ranks with `pr.apply`.
/// Same arithmetic as the in-process chaos gate: integer ranks scaled by
/// 1e6, so replay is bit-identical by construction.
pub fn remote_pagerank_step(
    graph: &Rdd<ShardHandle>,
    ranks: &Rdd<ShardHandle>,
    n_pages: u64,
    parts: usize,
) -> Rdd<ShardHandle> {
    remote_exchange(
        &remote_zip(graph, ranks),
        "pr.contrib",
        vec![parts as u64],
        "pr.apply",
        vec![n_pages, parts as u64],
        parts,
    )
}
