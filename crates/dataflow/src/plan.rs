//! The adaptive plan layer between lineage and stage submission.
//!
//! The DAG scheduler used to execute the lineage graph exactly as the user
//! wrote it. This module rewrites the physical execution instead, with
//! three independently gated optimisations (see
//! [`crate::SpangleContextBuilder`]; all default on):
//!
//! 1. **Narrow-chain fusion** — chains of one-parent narrow operators
//!    (map/filter/flat_map/map_partitions) execute as one fused streaming
//!    task: elements flow through the composed operators without an
//!    intermediate `Arc<Vec<T>>` per lineage node. Persisted nodes are
//!    barriers (they must materialise into the block manager), and chains
//!    through a multi-consumer node are not *counted* as fused because the
//!    node's work is recomputed per consumer either way. The rewrite is
//!    purely physical: lineage, cache semantics, and recovery are
//!    untouched.
//! 2. **Shuffle elision** — a shuffle whose map-side parent already
//!    carries the target [`PartitionerSig`] is rewritten into a narrow
//!    pass-through at plan (node-lowering) time. This generalises the old
//!    ad-hoc `CoSide::prepare` check to every shuffle site:
//!    `partition_by`, `reduce_by_key`, `group_by_key`, `combine_by_key`
//!    and `cogroup`. Elided nodes carry a marker ([`PlanNodeInfo`]) so
//!    the planner can attribute them to the stage that executes them.
//! 3. **Runtime partition coalescing** — when a stage that reads shuffle
//!    output becomes ready, the per-bucket byte counts the
//!    [`crate::shuffle::ShuffleService`] recorded during the map stages
//!    are used to pack small adjacent reduce buckets into shared executor
//!    tasks (`coalesce_task_groups`). Logical partition identity is
//!    preserved — every bucket still computes and reports as its own
//!    partition, which is what keeps `BlockOrigin`-checked fetch-failure
//!    recovery per-bucket — only the scheduling granularity changes.
//!
//! `analyze_stages` walks the type-erased [`LineageNode`] graph before
//! the scheduler submits anything and produces per-stage plan statistics
//! (`stages_fused`, `shuffles_elided`) that surface in
//! [`crate::metrics::StageReport`] / [`crate::metrics::JobReport`] and the
//! cumulative [`crate::metrics::MetricsSnapshot`].

use crate::rdd::{Dependency, LineageNode};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[cfg(doc)]
use crate::partitioner::PartitionerSig;

/// Default byte target one coalesced reduce task aims to cover
/// (`SpangleContextBuilder::target_partition_bytes`).
pub(crate) const DEFAULT_TARGET_PARTITION_BYTES: usize = 1 << 20;

/// Which plan rewrites are active for a context; built by
/// [`crate::SpangleContextBuilder`] and immutable afterwards.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlannerConfig {
    /// Stream narrow chains through composed operators instead of
    /// materialising a `Vec` per lineage node.
    pub(crate) fuse_narrow_chains: bool,
    /// Rewrite provably co-partitioned shuffles into narrow pass-throughs.
    pub(crate) elide_shuffles: bool,
    /// Pack small reduce buckets into shared tasks at stage launch.
    pub(crate) coalesce_partitions: bool,
    /// Byte target per coalesced task group.
    pub(crate) target_partition_bytes: usize,
}

impl Default for PlannerConfig {
    /// All rewrites on. Setting the `SPANGLE_DISABLE_PLANNER` environment
    /// variable (to anything but `0`) flips every default off — the lever
    /// `scripts/check.sh planoff` uses to keep the unoptimised execution
    /// path tested. Explicit builder calls always win over the
    /// environment.
    fn default() -> Self {
        let disabled = std::env::var_os("SPANGLE_DISABLE_PLANNER").is_some_and(|v| v != "0");
        PlannerConfig {
            fuse_narrow_chains: !disabled,
            elide_shuffles: !disabled,
            coalesce_partitions: !disabled,
            target_partition_bytes: DEFAULT_TARGET_PARTITION_BYTES,
        }
    }
}

/// Planner-visible attributes of one lineage node, reported through
/// [`LineageNode::plan_info`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanNodeInfo {
    /// A one-parent narrow operator that streams element-by-element from
    /// its parent under narrow-chain fusion.
    pub fusable: bool,
    /// Wide edges this node's construction rewrote into narrow
    /// pass-throughs because the parent already carried the target
    /// partitioner signature (0, 1, or — for a cogroup — up to 2).
    pub elided_shuffles: usize,
    /// Persist-marked: a fusion barrier, since the node's partitions must
    /// materialise into the block manager.
    pub persisted: bool,
}

/// Per-stage plan statistics produced by [`analyze_stages`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StagePlan {
    /// Narrow operator chains (length ≥ 2) collapsed into fused streaming
    /// execution within this stage's task bodies.
    pub(crate) fused_chains: usize,
    /// Shuffle edges rewritten to narrow pass-throughs that this stage
    /// executes locally.
    pub(crate) elided_shuffles: usize,
}

/// Walks the lineage graph once and attributes plan statistics to each
/// stage territory. `territories` holds one root per stage in stage order:
/// the map-side parent of each shuffle dependency, then the result RDD.
/// A node reachable from several territories is attributed to the first
/// (parents come before children, matching stage build order).
pub(crate) fn analyze_stages(
    territories: &[Arc<dyn LineageNode>],
    config: &PlannerConfig,
) -> Vec<StagePlan> {
    // Pass 1: full-graph walk (crossing shuffle edges) to count how many
    // edges consume each node. A node feeding two consumers is a fusion
    // barrier for accounting: its output is recomputed per consumer, so
    // nothing was collapsed.
    let mut consumers: HashMap<usize, usize> = HashMap::new();
    let mut info: HashMap<usize, PlanNodeInfo> = HashMap::new();
    let mut narrow_parents: HashMap<usize, Vec<usize>> = HashMap::new();
    {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<Arc<dyn LineageNode>> = territories.to_vec();
        while let Some(node) = stack.pop() {
            let id = node.rdd_id();
            if !seen.insert(id) {
                continue;
            }
            info.insert(id, node.plan_info());
            for dep in node.dependencies() {
                match dep {
                    Dependency::Narrow(parent) => {
                        *consumers.entry(parent.rdd_id()).or_default() += 1;
                        narrow_parents.entry(id).or_default().push(parent.rdd_id());
                        stack.push(parent);
                    }
                    Dependency::Shuffle(shuffle) => {
                        let parent = shuffle.parent_lineage();
                        *consumers.entry(parent.rdd_id()).or_default() += 1;
                        stack.push(parent);
                    }
                }
            }
        }
    }

    // Pass 2: claim each territory's narrow subgraph (stopping at shuffle
    // edges; shared nodes go to the first claimer) and count its fused
    // edges and elided shuffles. An edge child→parent is fused when both
    // ends are streaming operators, the parent is not persisted, and the
    // parent has exactly one consumer. A maximal run of fused edges is one
    // collapsed chain; in a run, exactly one child is not itself the
    // parent of another fused edge, so counting those tail children counts
    // the chains.
    let mut claimed: HashSet<usize> = HashSet::new();
    territories
        .iter()
        .map(|root| {
            let mut territory: Vec<usize> = Vec::new();
            let mut stack = vec![root.clone()];
            while let Some(node) = stack.pop() {
                let id = node.rdd_id();
                if !claimed.insert(id) {
                    continue;
                }
                territory.push(id);
                for dep in node.dependencies() {
                    if let Dependency::Narrow(parent) = dep {
                        stack.push(parent);
                    }
                }
            }

            let fused_edge = |child: usize, parent: usize| -> bool {
                config.fuse_narrow_chains
                    && info.get(&child).is_some_and(|i| i.fusable)
                    && info.get(&parent).is_some_and(|i| i.fusable && !i.persisted)
                    && consumers.get(&parent).copied().unwrap_or(0) == 1
            };
            let mut plan = StagePlan::default();
            let mut fused_parents: HashSet<usize> = HashSet::new();
            let mut fused_children: Vec<(usize, usize)> = Vec::new();
            for &id in &territory {
                plan.elided_shuffles += info.get(&id).map_or(0, |i| i.elided_shuffles);
                for &parent in narrow_parents.get(&id).map_or(&[][..], |v| &v[..]) {
                    if fused_edge(id, parent) {
                        fused_parents.insert(parent);
                        fused_children.push((id, parent));
                    }
                }
            }
            plan.fused_chains = fused_children
                .iter()
                .filter(|(child, _)| !fused_parents.contains(child))
                .count();
            plan
        })
        .collect()
}

/// Packs the reduce buckets of a ready stage into contiguous task groups:
/// greedy accumulation up to the byte target, one group minimum per
/// oversized bucket. The effective target never exceeds
/// `total / min_groups` so balanced stages keep at least `min_groups`
/// (normally the executor count) of parallelism. Returns the partitions of
/// each group, in partition order.
pub(crate) fn coalesce_task_groups(
    bucket_bytes: &[usize],
    target_bytes: usize,
    min_groups: usize,
) -> Vec<Vec<usize>> {
    let total: usize = bucket_bytes.iter().sum();
    let target = target_bytes
        .max(1)
        .min(total.div_ceil(min_groups.max(1)).max(1));
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut acc = 0usize;
    for (partition, &bytes) in bucket_bytes.iter().enumerate() {
        if !current.is_empty() && acc.saturating_add(bytes) > target {
            groups.push(std::mem::take(&mut current));
            acc = 0;
        }
        current.push(partition);
        acc = acc.saturating_add(bytes);
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_buckets_coalesce_into_one_group() {
        let groups = coalesce_task_groups(&[10, 10, 10], 1 << 20, 1);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn min_groups_floor_keeps_executor_parallelism() {
        // Four balanced buckets on a four-executor cluster must not merge
        // below four groups even under a huge byte target.
        let groups = coalesce_task_groups(&[100, 100, 100, 100], 1 << 30, 4);
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn oversized_buckets_get_their_own_group() {
        let groups = coalesce_task_groups(&[5, 500, 5, 5], 20, 1);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2, 3]]);
    }

    #[test]
    fn empty_buckets_collapse_fully() {
        let groups = coalesce_task_groups(&[0, 0, 0, 0], 1024, 2);
        assert_eq!(groups, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn grouping_is_contiguous_and_complete() {
        let bytes = [3, 9, 1, 1, 1, 40, 2];
        let groups = coalesce_task_groups(&bytes, 10, 1);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(flat, (0..bytes.len()).collect::<Vec<_>>());
        for g in &groups {
            assert!(!g.is_empty());
        }
    }
}
