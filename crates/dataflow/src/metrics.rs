//! Cumulative runtime metrics and per-job stage reports.
//!
//! Two views exist side by side. The *cumulative counters* are per
//! context; experiments take a [`MetricsSnapshot`] before and after a job
//! and subtract. The *job reports* are scoped: the DAG scheduler records
//! one [`JobReport`] per finished job — its stages, per-stage task time,
//! and the peak number of concurrently running stages — which the
//! experiment binaries print to show how the event-driven scheduler
//! overlapped sibling stages.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of recent job reports kept per context (iterative
/// workloads run hundreds of jobs; older reports are dropped
/// oldest-first). Override via `SpangleContext::builder()`.
pub(crate) const DEFAULT_JOB_REPORT_HISTORY: usize = 256;

/// Cumulative counters maintained by the runtime.
#[derive(Debug)]
pub struct Metrics {
    pub(crate) stages_run: AtomicU64,
    pub(crate) stages_skipped: AtomicU64,
    pub(crate) tasks_run: AtomicU64,
    pub(crate) tasks_stolen: AtomicU64,
    pub(crate) task_retries: AtomicU64,
    pub(crate) shuffle_write_bytes: AtomicU64,
    pub(crate) shuffle_read_bytes: AtomicU64,
    pub(crate) shuffle_records: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) recomputations: AtomicU64,
    pub(crate) broadcast_bytes: AtomicU64,
    pub(crate) executors_lost: AtomicU64,
    pub(crate) fetch_failures: AtomicU64,
    pub(crate) map_partitions_recomputed: AtomicU64,
    pub(crate) jobs_rejected: AtomicU64,
    pub(crate) jobs_deadlined: AtomicU64,
    pub(crate) admission_queue_wait_nanos: AtomicU64,
    pub(crate) admission_queue_peak: AtomicU64,
    pub(crate) partitions_evicted: AtomicU64,
    pub(crate) cache_highwater_bytes: AtomicU64,
    pub(crate) memory_highwater_bytes: AtomicU64,
    pub(crate) stages_fused: AtomicU64,
    pub(crate) shuffles_elided: AtomicU64,
    pub(crate) partitions_coalesced: AtomicU64,
    pub(crate) tasks_speculated: AtomicU64,
    pub(crate) speculation_wins: AtomicU64,
    pub(crate) tasks_cancelled: AtomicU64,
    pub(crate) blocks_spilled: AtomicU64,
    pub(crate) blocks_rehydrated: AtomicU64,
    pub(crate) spill_bytes: AtomicU64,
    pub(crate) disk_resident_bytes: AtomicU64,
    pub(crate) heartbeats_missed: AtomicU64,
    pub(crate) watchdog_trips: AtomicU64,
    pub(crate) executors_quarantined: AtomicU64,
    pub(crate) backoff_nanos: AtomicU64,
    /// Highest number of stages ever running concurrently in one job.
    max_concurrent_stages: AtomicU64,
    /// Per-job reports, newest last.
    job_reports: Mutex<VecDeque<JobReport>>,
    /// Retained-report cap (oldest dropped beyond it).
    job_report_history: usize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::with_history(DEFAULT_JOB_REPORT_HISTORY)
    }
}

impl Metrics {
    /// Creates zeroed counters retaining at most `job_report_history` job
    /// reports (oldest dropped first).
    pub(crate) fn with_history(job_report_history: usize) -> Self {
        Metrics {
            stages_run: AtomicU64::new(0),
            stages_skipped: AtomicU64::new(0),
            tasks_run: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            task_retries: AtomicU64::new(0),
            shuffle_write_bytes: AtomicU64::new(0),
            shuffle_read_bytes: AtomicU64::new(0),
            shuffle_records: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            recomputations: AtomicU64::new(0),
            broadcast_bytes: AtomicU64::new(0),
            executors_lost: AtomicU64::new(0),
            fetch_failures: AtomicU64::new(0),
            map_partitions_recomputed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_deadlined: AtomicU64::new(0),
            admission_queue_wait_nanos: AtomicU64::new(0),
            admission_queue_peak: AtomicU64::new(0),
            partitions_evicted: AtomicU64::new(0),
            cache_highwater_bytes: AtomicU64::new(0),
            memory_highwater_bytes: AtomicU64::new(0),
            stages_fused: AtomicU64::new(0),
            shuffles_elided: AtomicU64::new(0),
            partitions_coalesced: AtomicU64::new(0),
            tasks_speculated: AtomicU64::new(0),
            speculation_wins: AtomicU64::new(0),
            tasks_cancelled: AtomicU64::new(0),
            blocks_spilled: AtomicU64::new(0),
            blocks_rehydrated: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            disk_resident_bytes: AtomicU64::new(0),
            heartbeats_missed: AtomicU64::new(0),
            watchdog_trips: AtomicU64::new(0),
            executors_quarantined: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
            max_concurrent_stages: AtomicU64::new(0),
            job_reports: Mutex::new(VecDeque::new()),
            job_report_history: job_report_history.max(1),
        }
    }

    pub(crate) fn add(&self, field: MetricField, amount: u64) {
        self.counter(field).fetch_add(amount, Ordering::Relaxed);
    }

    /// Raises a high-water-mark field to `value` if it is higher than
    /// everything observed so far (the field stays monotone, so snapshot
    /// subtraction is well defined).
    pub(crate) fn raise(&self, field: MetricField, value: u64) {
        self.counter(field).fetch_max(value, Ordering::Relaxed);
    }

    fn counter(&self, field: MetricField) -> &AtomicU64 {
        match field {
            MetricField::StagesRun => &self.stages_run,
            MetricField::StagesSkipped => &self.stages_skipped,
            MetricField::TasksRun => &self.tasks_run,
            MetricField::TasksStolen => &self.tasks_stolen,
            MetricField::TaskRetries => &self.task_retries,
            MetricField::ShuffleWriteBytes => &self.shuffle_write_bytes,
            MetricField::ShuffleReadBytes => &self.shuffle_read_bytes,
            MetricField::ShuffleRecords => &self.shuffle_records,
            MetricField::CacheHits => &self.cache_hits,
            MetricField::CacheMisses => &self.cache_misses,
            MetricField::Recomputations => &self.recomputations,
            MetricField::BroadcastBytes => &self.broadcast_bytes,
            MetricField::ExecutorsLost => &self.executors_lost,
            MetricField::FetchFailures => &self.fetch_failures,
            MetricField::MapPartitionsRecomputed => &self.map_partitions_recomputed,
            MetricField::JobsRejected => &self.jobs_rejected,
            MetricField::JobsDeadlined => &self.jobs_deadlined,
            MetricField::AdmissionQueueWaitNanos => &self.admission_queue_wait_nanos,
            MetricField::AdmissionQueuePeak => &self.admission_queue_peak,
            MetricField::PartitionsEvicted => &self.partitions_evicted,
            MetricField::CacheHighwaterBytes => &self.cache_highwater_bytes,
            MetricField::MemoryHighwaterBytes => &self.memory_highwater_bytes,
            MetricField::StagesFused => &self.stages_fused,
            MetricField::ShufflesElided => &self.shuffles_elided,
            MetricField::PartitionsCoalesced => &self.partitions_coalesced,
            MetricField::TasksSpeculated => &self.tasks_speculated,
            MetricField::SpeculationWins => &self.speculation_wins,
            MetricField::TasksCancelled => &self.tasks_cancelled,
            MetricField::BlocksSpilled => &self.blocks_spilled,
            MetricField::BlocksRehydrated => &self.blocks_rehydrated,
            MetricField::SpillBytes => &self.spill_bytes,
            MetricField::DiskResidentBytes => &self.disk_resident_bytes,
            MetricField::HeartbeatsMissed => &self.heartbeats_missed,
            MetricField::WatchdogTrips => &self.watchdog_trips,
            MetricField::ExecutorsQuarantined => &self.executors_quarantined,
            MetricField::BackoffNanos => &self.backoff_nanos,
        }
    }

    /// Records a finished job's report, raising the context-wide
    /// concurrent-stage high-water mark.
    pub(crate) fn record_job(&self, report: JobReport) {
        self.max_concurrent_stages
            .fetch_max(report.max_concurrent_stages as u64, Ordering::Relaxed);
        let mut reports = self.job_reports.lock();
        while reports.len() >= self.job_report_history {
            reports.pop_front();
        }
        reports.push_back(report);
    }

    /// All retained job reports, oldest first.
    pub fn job_reports(&self) -> Vec<JobReport> {
        self.job_reports.lock().iter().cloned().collect()
    }

    /// The most recent job report, if any job finished yet.
    pub fn last_job_report(&self) -> Option<JobReport> {
        self.job_reports.lock().back().cloned()
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages_run: self.stages_run.load(Ordering::Relaxed),
            stages_skipped: self.stages_skipped.load(Ordering::Relaxed),
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            shuffle_write_bytes: self.shuffle_write_bytes.load(Ordering::Relaxed),
            shuffle_read_bytes: self.shuffle_read_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            recomputations: self.recomputations.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            executors_lost: self.executors_lost.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            map_partitions_recomputed: self.map_partitions_recomputed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_deadlined: self.jobs_deadlined.load(Ordering::Relaxed),
            admission_queue_wait_nanos: self.admission_queue_wait_nanos.load(Ordering::Relaxed),
            admission_queue_peak: self.admission_queue_peak.load(Ordering::Relaxed),
            partitions_evicted: self.partitions_evicted.load(Ordering::Relaxed),
            cache_highwater_bytes: self.cache_highwater_bytes.load(Ordering::Relaxed),
            memory_highwater_bytes: self.memory_highwater_bytes.load(Ordering::Relaxed),
            stages_fused: self.stages_fused.load(Ordering::Relaxed),
            shuffles_elided: self.shuffles_elided.load(Ordering::Relaxed),
            partitions_coalesced: self.partitions_coalesced.load(Ordering::Relaxed),
            tasks_speculated: self.tasks_speculated.load(Ordering::Relaxed),
            speculation_wins: self.speculation_wins.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            blocks_spilled: self.blocks_spilled.load(Ordering::Relaxed),
            blocks_rehydrated: self.blocks_rehydrated.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            disk_resident_bytes: self.disk_resident_bytes.load(Ordering::Relaxed),
            heartbeats_missed: self.heartbeats_missed.load(Ordering::Relaxed),
            watchdog_trips: self.watchdog_trips.load(Ordering::Relaxed),
            executors_quarantined: self.executors_quarantined.load(Ordering::Relaxed),
            backoff_nanos: self.backoff_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Counter names used internally when bumping [`Metrics`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum MetricField {
    StagesRun,
    StagesSkipped,
    TasksRun,
    TasksStolen,
    TaskRetries,
    ShuffleWriteBytes,
    ShuffleReadBytes,
    ShuffleRecords,
    CacheHits,
    CacheMisses,
    Recomputations,
    BroadcastBytes,
    ExecutorsLost,
    FetchFailures,
    MapPartitionsRecomputed,
    JobsRejected,
    JobsDeadlined,
    AdmissionQueueWaitNanos,
    AdmissionQueuePeak,
    PartitionsEvicted,
    CacheHighwaterBytes,
    MemoryHighwaterBytes,
    StagesFused,
    ShufflesElided,
    PartitionsCoalesced,
    TasksSpeculated,
    SpeculationWins,
    TasksCancelled,
    BlocksSpilled,
    BlocksRehydrated,
    SpillBytes,
    DiskResidentBytes,
    HeartbeatsMissed,
    WatchdogTrips,
    ExecutorsQuarantined,
    BackoffNanos,
}

/// How one stage of a job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage's tasks ran in this job.
    Ran,
    /// The stage's shuffle output already existed (or another concurrent
    /// job produced it); nothing ran here.
    Skipped,
    /// The stage was still in flight when its job aborted: some of its
    /// tasks may have run (their time is accounted), but the stage never
    /// completed.
    Aborted,
}

/// How a whole job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every stage completed and the action's results were returned.
    Succeeded,
    /// Some task exhausted its attempts (or the cluster shut down) and the
    /// job returned a `JobError`. Stages in flight at that moment appear
    /// in the report as [`StageOutcome::Aborted`].
    Aborted,
    /// The admission controller shed the job: the system was saturated
    /// (concurrency bound or memory high-water mark) and the job's
    /// priority was below the shed threshold, or its tasks did not fit the
    /// per-priority queue bound. Nothing of the job ever ran.
    Rejected,
    /// The job's `run_with_deadline` budget elapsed before it finished.
    /// If it was already running it was aborted through the normal abort
    /// path (partial shuffle output abandoned); if it was still queued for
    /// admission it never ran at all.
    Deadlined,
}

/// Per-stage accounting of one job.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Context-wide stage id (allocated when the stage was scheduled).
    pub stage_id: usize,
    /// The shuffle this map stage feeds, `None` for the result stage.
    pub shuffle_id: Option<usize>,
    /// Number of tasks the stage owns.
    pub num_tasks: usize,
    /// Task attempts of this stage that ran on an executor other than the
    /// one their partition was placed on (stolen, i.e. charged as
    /// "remote"). Zero when locality held for every attempt.
    pub tasks_stolen: usize,
    /// Whether the stage ran or was skipped.
    pub outcome: StageOutcome,
    /// Total CPU time spent in this stage's task bodies, summed over
    /// attempts, in nanoseconds.
    pub task_nanos: u64,
    /// Wall-clock time from first submission to last task completion, in
    /// nanoseconds. Zero for skipped stages.
    pub wall_nanos: u64,
    /// `TaskError::FetchFailed` observations by this stage's tasks: each is
    /// a reduce-side attempt that found a parent shuffle block lost with
    /// its executor and was parked until the map output was rebuilt.
    pub fetch_failures: usize,
    /// Map partitions of this stage recomputed from lineage during a
    /// recovery run (zero on the stage's first, full run: the counter
    /// marks re-runs triggered by fetch failures downstream).
    pub map_partitions_recomputed: usize,
    /// Narrow operator chains the planner collapsed into fused streaming
    /// execution inside this stage's task bodies (each chain spans ≥ 2
    /// operators that no longer materialise intermediate partitions).
    pub stages_fused: usize,
    /// Shuffle edges the planner rewrote to narrow pass-throughs that
    /// this stage executes locally (the map-side parent already carried
    /// the target partitioner signature).
    pub shuffles_elided: usize,
    /// Reduce buckets this stage merged into shared tasks at launch
    /// because their recorded shuffle bytes fell below the coalescing
    /// target: `num_tasks` minus the task groups actually scheduled.
    pub partitions_coalesced: usize,
    /// Speculative duplicate attempts launched for this stage's tail
    /// tasks (originals that ran past the stage's duration-median
    /// multiple).
    pub tasks_speculated: usize,
    /// Speculative attempts of this stage that completed before the
    /// original they duplicated.
    pub speculation_wins: usize,
    /// Task attempts of this stage asked to stop early through their
    /// `CancelToken` (speculation losers, aborts, expired deadlines).
    pub tasks_cancelled: usize,
    /// Blocks the tiered store demoted to the on-disk spill tier while
    /// this stage ran. Spilling is context-wide, so concurrent stages may
    /// both observe the same pressure; the attribution is "activity during
    /// the stage", not strict causality.
    pub blocks_spilled: usize,
    /// Spilled blocks promoted back to memory while this stage ran
    /// (reduce fetches or cache reads touching cold data).
    pub blocks_rehydrated: usize,
    /// Encoded bytes written to the spill tier while this stage ran.
    pub spill_bytes: u64,
    /// No-progress watchdog trips against this stage's running attempts:
    /// each launched a speculation-style duplicate of a task whose
    /// executor still heartbeated but whose progress counter was frozen.
    pub watchdog_trips: usize,
    /// Nanoseconds of seeded retry backoff scheduled before this stage's
    /// re-submitted attempts (retries and recovery resubmissions).
    pub backoff_nanos: u64,
}

/// Scheduler-level accounting of one finished job.
///
/// Recorded for *every* job that left the scheduler — succeeded or
/// aborted — so `last_job_report()` after a failed action describes that
/// failed job (outcome [`JobOutcome::Aborted`], in-flight stages
/// [`StageOutcome::Aborted`]) rather than silently showing the previous
/// job's report.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Context-wide job id.
    pub job_id: usize,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Priority the job was submitted with (higher runs first; the
    /// default FIFO pool is 0).
    pub priority: i32,
    /// One entry per stage the job touched, in completion order.
    pub stages: Vec<StageReport>,
    /// Peak number of stages whose tasks were in flight simultaneously.
    pub max_concurrent_stages: usize,
    /// Nanoseconds each executor spent running this job's task bodies,
    /// indexed by executor id (built from task completion events, so it is
    /// exact per job even when jobs run concurrently).
    pub executor_busy_nanos: Vec<u64>,
    /// Nanoseconds this job's task attempts spent queued on executors
    /// before starting, summed over attempts. Under a shared scheduler
    /// this is where priority fairness shows: a high-priority job's queue
    /// wait stays bounded while lower-priority traffic absorbs the
    /// backlog.
    pub queue_wait_nanos: u64,
    /// Nanoseconds the job waited in the scheduler's admission queue
    /// before it was admitted (zero when capacity was free at submission,
    /// or when the job was shed without ever being queued).
    pub admission_wait_nanos: u64,
    /// End-to-end wall-clock time of the job, in nanoseconds.
    pub wall_nanos: u64,
}

impl JobReport {
    /// Stages that actually ran (not skipped).
    pub fn stages_run(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.outcome == StageOutcome::Ran)
            .count()
    }

    /// Stages satisfied from existing shuffle output.
    pub fn stages_skipped(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.outcome == StageOutcome::Skipped)
            .count()
    }

    /// Stages still in flight when the job aborted.
    pub fn stages_aborted(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.outcome == StageOutcome::Aborted)
            .count()
    }

    /// Task attempts of this job that ran away from their placed executor.
    pub fn tasks_stolen(&self) -> usize {
        self.stages.iter().map(|s| s.tasks_stolen).sum()
    }

    /// Reduce-side attempts of this job that observed a lost shuffle block
    /// (`TaskError::FetchFailed`) and waited out a map recovery.
    pub fn fetch_failures(&self) -> usize {
        self.stages.iter().map(|s| s.fetch_failures).sum()
    }

    /// Map partitions this job recomputed from lineage to replace shuffle
    /// output lost with a dead executor.
    pub fn map_partitions_recomputed(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.map_partitions_recomputed)
            .sum()
    }

    /// Narrow operator chains the planner fused across this job's stages.
    pub fn stages_fused(&self) -> usize {
        self.stages.iter().map(|s| s.stages_fused).sum()
    }

    /// Shuffle edges the planner elided across this job's stages.
    pub fn shuffles_elided(&self) -> usize {
        self.stages.iter().map(|s| s.shuffles_elided).sum()
    }

    /// Reduce buckets merged into shared tasks across this job's stages.
    pub fn partitions_coalesced(&self) -> usize {
        self.stages.iter().map(|s| s.partitions_coalesced).sum()
    }

    /// Speculative duplicate attempts launched across this job's stages.
    pub fn tasks_speculated(&self) -> usize {
        self.stages.iter().map(|s| s.tasks_speculated).sum()
    }

    /// Speculative attempts that beat the original across this job's
    /// stages.
    pub fn speculation_wins(&self) -> usize {
        self.stages.iter().map(|s| s.speculation_wins).sum()
    }

    /// Task attempts of this job cancelled through their token.
    pub fn tasks_cancelled(&self) -> usize {
        self.stages.iter().map(|s| s.tasks_cancelled).sum()
    }

    /// Blocks demoted to the on-disk spill tier while this job's stages
    /// ran (see [`StageReport::blocks_spilled`] for attribution caveats).
    pub fn blocks_spilled(&self) -> usize {
        self.stages.iter().map(|s| s.blocks_spilled).sum()
    }

    /// Spilled blocks promoted back to memory while this job's stages ran.
    pub fn blocks_rehydrated(&self) -> usize {
        self.stages.iter().map(|s| s.blocks_rehydrated).sum()
    }

    /// Encoded bytes written to the spill tier while this job's stages ran.
    pub fn spill_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.spill_bytes).sum()
    }

    /// No-progress watchdog trips across this job's stages (each
    /// duplicated a wedged-looking task through the speculation path).
    pub fn watchdog_trips(&self) -> usize {
        self.stages.iter().map(|s| s.watchdog_trips).sum()
    }

    /// Nanoseconds of seeded retry backoff scheduled across this job's
    /// re-submitted attempts.
    pub fn backoff_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.backoff_nanos).sum()
    }

    /// Busy-time imbalance across executors: max/mean of
    /// `executor_busy_nanos` (1.0 = perfectly even, higher = more skew).
    /// `None` when the job did no executor work.
    pub fn busy_skew(&self) -> Option<f64> {
        let max = *self.executor_busy_nanos.iter().max()?;
        let total: u64 = self.executor_busy_nanos.iter().sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / self.executor_busy_nanos.len() as f64;
        Some(max as f64 / mean)
    }
}

impl std::fmt::Display for JobReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {}{}: {} stages ({} run, {} skipped{}), max {} concurrent, {} stolen, queue wait {:.2} ms, {:.2} ms wall{}",
            self.job_id,
            if self.priority != 0 {
                format!(" (prio {})", self.priority)
            } else {
                String::new()
            },
            self.stages.len(),
            self.stages_run(),
            self.stages_skipped(),
            if self.stages_aborted() != 0 {
                format!(", {} aborted", self.stages_aborted())
            } else {
                String::new()
            },
            self.max_concurrent_stages,
            self.tasks_stolen(),
            self.queue_wait_nanos as f64 / 1e6,
            self.wall_nanos as f64 / 1e6,
            match self.outcome {
                JobOutcome::Succeeded => "",
                JobOutcome::Aborted => " [ABORTED]",
                JobOutcome::Rejected => " [REJECTED]",
                JobOutcome::Deadlined => " [DEADLINED]",
            },
        )?;
        if self.admission_wait_nanos != 0 {
            write!(
                f,
                "\n  admission wait {:.2} ms",
                self.admission_wait_nanos as f64 / 1e6
            )?;
        }
        if self.stages_fused() != 0
            || self.shuffles_elided() != 0
            || self.partitions_coalesced() != 0
        {
            write!(
                f,
                "\n  planner: {} chains fused, {} shuffles elided, {} partitions coalesced",
                self.stages_fused(),
                self.shuffles_elided(),
                self.partitions_coalesced(),
            )?;
        }
        if self.tasks_speculated() != 0 || self.tasks_cancelled() != 0 {
            write!(
                f,
                "\n  speculation: {} launched, {} won, {} tasks cancelled",
                self.tasks_speculated(),
                self.speculation_wins(),
                self.tasks_cancelled(),
            )?;
        }
        if self.blocks_spilled() != 0 || self.blocks_rehydrated() != 0 {
            write!(
                f,
                "\n  spill: {} blocks out, {} back, {:.1} KiB written",
                self.blocks_spilled(),
                self.blocks_rehydrated(),
                self.spill_bytes() as f64 / 1024.0,
            )?;
        }
        if self.fetch_failures() != 0 || self.map_partitions_recomputed() != 0 {
            write!(
                f,
                "\n  recovery: {} fetch failures, {} map partitions recomputed",
                self.fetch_failures(),
                self.map_partitions_recomputed(),
            )?;
        }
        if self.watchdog_trips() != 0 || self.backoff_nanos() != 0 {
            write!(
                f,
                "\n  health: {} watchdog trips, {:.2} ms backoff",
                self.watchdog_trips(),
                self.backoff_nanos() as f64 / 1e6,
            )?;
        }
        for s in &self.stages {
            let kind = match s.shuffle_id {
                Some(id) => format!("map(shuffle {id})"),
                None => "result".to_string(),
            };
            match s.outcome {
                StageOutcome::Ran => {
                    write!(
                        f,
                        "\n  stage {:>3} {kind:<16} {:>3} tasks ({:>2} stolen)  task {:>8.2} ms  wall {:>8.2} ms",
                        s.stage_id,
                        s.num_tasks,
                        s.tasks_stolen,
                        s.task_nanos as f64 / 1e6,
                        s.wall_nanos as f64 / 1e6,
                    )?;
                    if s.map_partitions_recomputed != 0 {
                        write!(f, "  [recovered {} maps]", s.map_partitions_recomputed)?;
                    }
                    if s.fetch_failures != 0 {
                        write!(f, "  [{} fetch failures]", s.fetch_failures)?;
                    }
                }
                StageOutcome::Skipped => {
                    write!(f, "\n  stage {:>3} {kind:<16} skipped", s.stage_id)?
                }
                StageOutcome::Aborted => write!(
                    f,
                    "\n  stage {:>3} {kind:<16} aborted after {:>8.2} ms task time",
                    s.stage_id,
                    s.task_nanos as f64 / 1e6,
                )?,
            }
        }
        if let Some(skew) = self.busy_skew() {
            let busy: Vec<String> = self
                .executor_busy_nanos
                .iter()
                .map(|n| format!("{:.2}", *n as f64 / 1e6))
                .collect();
            write!(
                f,
                "\n  executor busy ms: [{}]  skew {skew:.2}",
                busy.join(", ")
            )?;
        }
        Ok(())
    }
}

/// A point-in-time copy of all counters. Subtract two snapshots to get the
/// cost of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Stages whose tasks actually ran.
    pub stages_run: u64,
    /// Map stages skipped because their shuffle output already existed.
    pub stages_skipped: u64,
    /// Task attempts started (including retries).
    pub tasks_run: u64,
    /// Task attempts that ran on an executor other than the one their
    /// partition was placed on (work stealing).
    pub tasks_stolen: u64,
    /// Task attempts re-submitted after a failure.
    pub task_retries: u64,
    /// Deep bytes written to the shuffle service.
    pub shuffle_write_bytes: u64,
    /// Deep bytes fetched from the shuffle service.
    pub shuffle_read_bytes: u64,
    /// Records written to the shuffle service.
    pub shuffle_records: u64,
    /// Persisted partitions served from the block manager.
    pub cache_hits: u64,
    /// Persisted partitions that had to be (re)computed.
    pub cache_misses: u64,
    /// Partitions recomputed due to task retries.
    pub recomputations: u64,
    /// Bytes replicated to executors by broadcasts.
    pub broadcast_bytes: u64,
    /// Executors killed (each loss discards the incarnation's shuffle
    /// blocks and cached partitions and seats a replacement).
    pub executors_lost: u64,
    /// Reduce-side fetches that found a shuffle block lost with its
    /// executor (`TaskError::FetchFailed`).
    pub fetch_failures: u64,
    /// Map partitions recomputed from lineage to rebuild lost shuffle
    /// output (only the missing partitions re-run, never whole stages).
    pub map_partitions_recomputed: u64,
    /// Jobs shed by the admission controller (outcome
    /// [`JobOutcome::Rejected`]); nothing of a rejected job ever ran.
    pub jobs_rejected: u64,
    /// Jobs whose `run_with_deadline` budget elapsed (outcome
    /// [`JobOutcome::Deadlined`]).
    pub jobs_deadlined: u64,
    /// Total nanoseconds jobs spent queued for admission before running.
    pub admission_queue_wait_nanos: u64,
    /// High-water mark of the admission queue length (jobs waiting for
    /// capacity at once).
    pub admission_queue_peak: u64,
    /// Cached partitions dropped by manual eviction (`evict_cached_partition`,
    /// `Rdd::unpersist`).
    pub partitions_evicted: u64,
    /// High-water mark of resident cached-partition bytes.
    pub cache_highwater_bytes: u64,
    /// High-water mark of total resident memory (cached partitions plus
    /// shuffle blocks) — the figure the admission controller's
    /// `memory_high_watermark_bytes` bound is compared against.
    pub memory_highwater_bytes: u64,
    /// Narrow operator chains the planner collapsed into fused streaming
    /// execution (no intermediate partition materialisation).
    pub stages_fused: u64,
    /// Shuffle edges rewritten to narrow pass-throughs because the
    /// map-side parent already carried the target partitioner signature.
    pub shuffles_elided: u64,
    /// Reduce buckets merged into shared executor tasks at stage launch
    /// because their shuffle bytes fell below the coalescing target.
    pub partitions_coalesced: u64,
    /// Speculative duplicate attempts the driver launched for tail tasks
    /// that ran past the stage's duration-median multiple.
    pub tasks_speculated: u64,
    /// Speculative attempts that finished before the original they
    /// duplicated (the duplicate's result won first-write-wins).
    pub speculation_wins: u64,
    /// Running task bodies asked to stop early through their
    /// `CancelToken` (speculation losers, job aborts, expired deadlines).
    pub tasks_cancelled: u64,
    /// Blocks demoted from memory to the on-disk spill tier under memory
    /// pressure (resident cache+shuffle bytes crossed the admission
    /// watermark).
    pub blocks_spilled: u64,
    /// Spilled blocks read back from disk and reinstated in memory on
    /// demand (a reduce fetch or cache read touched cold data).
    pub blocks_rehydrated: u64,
    /// Cumulative encoded bytes written to the spill tier (framing
    /// included).
    pub spill_bytes: u64,
    /// High-water mark of bytes resident in the on-disk spill tier (kept
    /// monotone like the other high-water fields so snapshot subtraction
    /// stays well defined; the live gauge is
    /// `SpangleContext::disk_resident_bytes`).
    pub disk_resident_bytes: u64,
    /// Heartbeat intervals found missed when the monitor declared a busy
    /// executor lost (each detection adds the full interval count that
    /// crossed the loss threshold).
    pub heartbeats_missed: u64,
    /// Running tasks the no-progress watchdog declared wedged and
    /// duplicated through the speculation path.
    pub watchdog_trips: u64,
    /// Executors drained by the failure-rate quarantine (re-quarantines
    /// after a failed canary count again).
    pub executors_quarantined: u64,
    /// Cumulative nanoseconds of seeded retry backoff scheduled before
    /// re-submitted task attempts.
    pub backoff_nanos: u64,
}

impl std::ops::Sub for MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn sub(self, rhs: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages_run: self.stages_run - rhs.stages_run,
            stages_skipped: self.stages_skipped - rhs.stages_skipped,
            tasks_run: self.tasks_run - rhs.tasks_run,
            tasks_stolen: self.tasks_stolen - rhs.tasks_stolen,
            task_retries: self.task_retries - rhs.task_retries,
            shuffle_write_bytes: self.shuffle_write_bytes - rhs.shuffle_write_bytes,
            shuffle_read_bytes: self.shuffle_read_bytes - rhs.shuffle_read_bytes,
            shuffle_records: self.shuffle_records - rhs.shuffle_records,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            recomputations: self.recomputations - rhs.recomputations,
            broadcast_bytes: self.broadcast_bytes - rhs.broadcast_bytes,
            executors_lost: self.executors_lost - rhs.executors_lost,
            fetch_failures: self.fetch_failures - rhs.fetch_failures,
            map_partitions_recomputed: self.map_partitions_recomputed
                - rhs.map_partitions_recomputed,
            jobs_rejected: self.jobs_rejected - rhs.jobs_rejected,
            jobs_deadlined: self.jobs_deadlined - rhs.jobs_deadlined,
            admission_queue_wait_nanos: self.admission_queue_wait_nanos
                - rhs.admission_queue_wait_nanos,
            admission_queue_peak: self.admission_queue_peak - rhs.admission_queue_peak,
            partitions_evicted: self.partitions_evicted - rhs.partitions_evicted,
            cache_highwater_bytes: self.cache_highwater_bytes - rhs.cache_highwater_bytes,
            memory_highwater_bytes: self.memory_highwater_bytes - rhs.memory_highwater_bytes,
            stages_fused: self.stages_fused - rhs.stages_fused,
            shuffles_elided: self.shuffles_elided - rhs.shuffles_elided,
            partitions_coalesced: self.partitions_coalesced - rhs.partitions_coalesced,
            tasks_speculated: self.tasks_speculated - rhs.tasks_speculated,
            speculation_wins: self.speculation_wins - rhs.speculation_wins,
            tasks_cancelled: self.tasks_cancelled - rhs.tasks_cancelled,
            blocks_spilled: self.blocks_spilled - rhs.blocks_spilled,
            blocks_rehydrated: self.blocks_rehydrated - rhs.blocks_rehydrated,
            spill_bytes: self.spill_bytes - rhs.spill_bytes,
            disk_resident_bytes: self.disk_resident_bytes - rhs.disk_resident_bytes,
            heartbeats_missed: self.heartbeats_missed - rhs.heartbeats_missed,
            watchdog_trips: self.watchdog_trips - rhs.watchdog_trips,
            executors_quarantined: self.executors_quarantined - rhs.executors_quarantined,
            backoff_nanos: self.backoff_nanos - rhs.backoff_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_isolates_one_job() {
        let m = Metrics::default();
        m.add(MetricField::TasksRun, 3);
        let before = m.snapshot();
        m.add(MetricField::TasksRun, 5);
        m.add(MetricField::ShuffleWriteBytes, 1024);
        let delta = m.snapshot() - before;
        assert_eq!(delta.tasks_run, 5);
        assert_eq!(delta.shuffle_write_bytes, 1024);
        assert_eq!(delta.stages_run, 0);
    }

    fn empty_report(job_id: usize) -> JobReport {
        JobReport {
            job_id,
            outcome: JobOutcome::Succeeded,
            priority: 0,
            stages: Vec::new(),
            max_concurrent_stages: 1,
            executor_busy_nanos: Vec::new(),
            queue_wait_nanos: 0,
            admission_wait_nanos: 0,
            wall_nanos: 0,
        }
    }

    #[test]
    fn job_reports_are_capped_and_ordered() {
        let m = Metrics::default();
        for id in 0..(DEFAULT_JOB_REPORT_HISTORY + 10) {
            m.record_job(empty_report(id));
        }
        let reports = m.job_reports();
        assert_eq!(reports.len(), DEFAULT_JOB_REPORT_HISTORY);
        assert_eq!(reports.first().unwrap().job_id, 10);
        assert_eq!(
            m.last_job_report().unwrap().job_id,
            DEFAULT_JOB_REPORT_HISTORY + 9
        );
    }

    #[test]
    fn history_depth_is_configurable() {
        let m = Metrics::with_history(3);
        for id in 0..10 {
            m.record_job(empty_report(id));
        }
        let reports = m.job_reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports.first().unwrap().job_id, 7);
        assert_eq!(m.last_job_report().unwrap().job_id, 9);
    }

    #[test]
    fn report_counts_run_and_skipped_stages() {
        let stage = |outcome| StageReport {
            stage_id: 0,
            shuffle_id: None,
            num_tasks: 2,
            tasks_stolen: 1,
            outcome,
            task_nanos: 0,
            wall_nanos: 0,
            fetch_failures: 0,
            map_partitions_recomputed: 0,
            stages_fused: 0,
            shuffles_elided: 0,
            partitions_coalesced: 0,
            tasks_speculated: 0,
            speculation_wins: 0,
            tasks_cancelled: 0,
            blocks_spilled: 0,
            blocks_rehydrated: 0,
            spill_bytes: 0,
            watchdog_trips: 0,
            backoff_nanos: 0,
        };
        let report = JobReport {
            job_id: 1,
            outcome: JobOutcome::Succeeded,
            priority: 0,
            stages: vec![
                stage(StageOutcome::Ran),
                stage(StageOutcome::Skipped),
                stage(StageOutcome::Ran),
            ],
            max_concurrent_stages: 2,
            executor_busy_nanos: vec![3_000_000, 1_000_000],
            queue_wait_nanos: 0,
            admission_wait_nanos: 0,
            wall_nanos: 0,
        };
        assert_eq!(report.stages_run(), 2);
        assert_eq!(report.stages_skipped(), 1);
        assert_eq!(report.stages_aborted(), 0);
        assert_eq!(report.tasks_stolen(), 3);
        let skew = report.busy_skew().unwrap();
        assert!((skew - 1.5).abs() < 1e-9, "3M vs mean 2M, skew was {skew}");
        let rendered = format!("{report}");
        assert!(rendered.contains("max 2 concurrent"));
        assert!(rendered.contains("3 stolen"));
        assert!(rendered.contains("executor busy ms"));
        assert!(!rendered.contains("ABORTED"));
    }

    #[test]
    fn aborted_stages_count_separately_from_skipped() {
        let stage = |outcome| StageReport {
            stage_id: 0,
            shuffle_id: Some(1),
            num_tasks: 4,
            tasks_stolen: 0,
            outcome,
            task_nanos: 5_000_000,
            wall_nanos: 0,
            fetch_failures: 0,
            map_partitions_recomputed: 0,
            stages_fused: 1,
            shuffles_elided: 0,
            partitions_coalesced: 0,
            tasks_speculated: 1,
            speculation_wins: 1,
            tasks_cancelled: 1,
            blocks_spilled: 2,
            blocks_rehydrated: 1,
            spill_bytes: 4096,
            watchdog_trips: 1,
            backoff_nanos: 2_000_000,
        };
        let report = JobReport {
            job_id: 2,
            outcome: JobOutcome::Aborted,
            priority: 3,
            stages: vec![stage(StageOutcome::Ran), stage(StageOutcome::Aborted)],
            max_concurrent_stages: 1,
            executor_busy_nanos: vec![10_000_000],
            queue_wait_nanos: 2_000_000,
            admission_wait_nanos: 0,
            wall_nanos: 0,
        };
        assert_eq!(report.stages_run(), 1);
        assert_eq!(report.stages_skipped(), 0, "aborted is not skipped");
        assert_eq!(report.stages_aborted(), 1);
        let rendered = format!("{report}");
        assert!(rendered.contains("ABORTED"));
        assert!(rendered.contains("1 aborted"));
        assert!(rendered.contains("prio 3"));
        assert!(rendered.contains("aborted after"));
        assert_eq!(report.stages_fused(), 2);
        assert!(rendered.contains("planner: 2 chains fused"));
        assert_eq!(report.tasks_speculated(), 2);
        assert_eq!(report.speculation_wins(), 2);
        assert_eq!(report.tasks_cancelled(), 2);
        assert!(rendered.contains("speculation: 2 launched, 2 won, 2 tasks cancelled"));
        assert_eq!(report.watchdog_trips(), 2);
        assert_eq!(report.backoff_nanos(), 4_000_000);
        assert!(rendered.contains("health: 2 watchdog trips, 4.00 ms backoff"));
    }

    #[test]
    fn raise_keeps_high_water_marks_monotone() {
        let m = Metrics::default();
        m.raise(MetricField::CacheHighwaterBytes, 100);
        m.raise(MetricField::CacheHighwaterBytes, 40);
        m.raise(MetricField::MemoryHighwaterBytes, 250);
        m.raise(MetricField::AdmissionQueuePeak, 3);
        m.raise(MetricField::AdmissionQueuePeak, 2);
        let snap = m.snapshot();
        assert_eq!(
            snap.cache_highwater_bytes, 100,
            "lower values never regress"
        );
        assert_eq!(snap.memory_highwater_bytes, 250);
        assert_eq!(snap.admission_queue_peak, 3);
    }

    #[test]
    fn rejected_and_deadlined_reports_render_their_markers() {
        let rejected = JobReport {
            outcome: JobOutcome::Rejected,
            ..empty_report(4)
        };
        assert!(format!("{rejected}").contains("[REJECTED]"));
        let deadlined = JobReport {
            outcome: JobOutcome::Deadlined,
            admission_wait_nanos: 3_000_000,
            ..empty_report(5)
        };
        let rendered = format!("{deadlined}");
        assert!(rendered.contains("[DEADLINED]"));
        assert!(rendered.contains("admission wait 3.00 ms"));
    }

    #[test]
    fn busy_skew_is_none_for_idle_jobs() {
        let report = JobReport {
            executor_busy_nanos: vec![0, 0],
            ..empty_report(0)
        };
        assert_eq!(report.busy_skew(), None);
    }
}
