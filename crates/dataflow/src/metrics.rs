//! Cumulative runtime metrics.
//!
//! Counters are cumulative per context; experiments take a
//! [`MetricsSnapshot`] before and after a job and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters maintained by the runtime.
#[derive(Debug, Default)]
pub struct Metrics {
    pub(crate) stages_run: AtomicU64,
    pub(crate) stages_skipped: AtomicU64,
    pub(crate) tasks_run: AtomicU64,
    pub(crate) task_retries: AtomicU64,
    pub(crate) shuffle_write_bytes: AtomicU64,
    pub(crate) shuffle_read_bytes: AtomicU64,
    pub(crate) shuffle_records: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) recomputations: AtomicU64,
    pub(crate) broadcast_bytes: AtomicU64,
}

impl Metrics {
    pub(crate) fn add(&self, field: MetricField, amount: u64) {
        self.counter(field).fetch_add(amount, Ordering::Relaxed);
    }

    fn counter(&self, field: MetricField) -> &AtomicU64 {
        match field {
            MetricField::StagesRun => &self.stages_run,
            MetricField::StagesSkipped => &self.stages_skipped,
            MetricField::TasksRun => &self.tasks_run,
            MetricField::TaskRetries => &self.task_retries,
            MetricField::ShuffleWriteBytes => &self.shuffle_write_bytes,
            MetricField::ShuffleReadBytes => &self.shuffle_read_bytes,
            MetricField::ShuffleRecords => &self.shuffle_records,
            MetricField::CacheHits => &self.cache_hits,
            MetricField::CacheMisses => &self.cache_misses,
            MetricField::Recomputations => &self.recomputations,
            MetricField::BroadcastBytes => &self.broadcast_bytes,
        }
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages_run: self.stages_run.load(Ordering::Relaxed),
            stages_skipped: self.stages_skipped.load(Ordering::Relaxed),
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            shuffle_write_bytes: self.shuffle_write_bytes.load(Ordering::Relaxed),
            shuffle_read_bytes: self.shuffle_read_bytes.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            recomputations: self.recomputations.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Counter names used internally when bumping [`Metrics`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum MetricField {
    StagesRun,
    StagesSkipped,
    TasksRun,
    TaskRetries,
    ShuffleWriteBytes,
    ShuffleReadBytes,
    ShuffleRecords,
    CacheHits,
    CacheMisses,
    Recomputations,
    BroadcastBytes,
}

/// A point-in-time copy of all counters. Subtract two snapshots to get the
/// cost of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Stages whose tasks actually ran.
    pub stages_run: u64,
    /// Map stages skipped because their shuffle output already existed.
    pub stages_skipped: u64,
    /// Task attempts started (including retries).
    pub tasks_run: u64,
    /// Task attempts re-submitted after a failure.
    pub task_retries: u64,
    /// Deep bytes written to the shuffle service.
    pub shuffle_write_bytes: u64,
    /// Deep bytes fetched from the shuffle service.
    pub shuffle_read_bytes: u64,
    /// Records written to the shuffle service.
    pub shuffle_records: u64,
    /// Persisted partitions served from the block manager.
    pub cache_hits: u64,
    /// Persisted partitions that had to be (re)computed.
    pub cache_misses: u64,
    /// Partitions recomputed due to task retries.
    pub recomputations: u64,
    /// Bytes replicated to executors by broadcasts.
    pub broadcast_bytes: u64,
}

impl std::ops::Sub for MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn sub(self, rhs: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages_run: self.stages_run - rhs.stages_run,
            stages_skipped: self.stages_skipped - rhs.stages_skipped,
            tasks_run: self.tasks_run - rhs.tasks_run,
            task_retries: self.task_retries - rhs.task_retries,
            shuffle_write_bytes: self.shuffle_write_bytes - rhs.shuffle_write_bytes,
            shuffle_read_bytes: self.shuffle_read_bytes - rhs.shuffle_read_bytes,
            shuffle_records: self.shuffle_records - rhs.shuffle_records,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            recomputations: self.recomputations - rhs.recomputations,
            broadcast_bytes: self.broadcast_bytes - rhs.broadcast_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_isolates_one_job() {
        let m = Metrics::default();
        m.add(MetricField::TasksRun, 3);
        let before = m.snapshot();
        m.add(MetricField::TasksRun, 5);
        m.add(MetricField::ShuffleWriteBytes, 1024);
        let delta = m.snapshot() - before;
        assert_eq!(delta.tasks_run, 5);
        assert_eq!(delta.shuffle_write_bytes, 1024);
        assert_eq!(delta.stages_run, 0);
    }
}
