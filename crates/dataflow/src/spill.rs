//! On-disk spill tier shared by the shuffle service and the block manager.
//!
//! When resident cache + shuffle bytes cross the admission memory
//! watermark, cold blocks are *demoted*: their records are encoded with the
//! hand-rolled [`MemSize`] spill codec and written to a private temp
//! directory, freeing their heap bytes while keeping them fetchable. A later
//! read *rehydrates* the block — reads the file back, verifies the frame,
//! decodes, and reinstates the records in memory — instead of failing the
//! fetch or recomputing lineage.
//!
//! The store is deliberately primitive: one file per block, written whole
//! and read whole, so the per-chunk IO cost model used by the local-engine
//! baseline maps one-to-one onto real syscalls. Files are framed with a
//! magic, an explicit payload length, and an FNV-1a checksum so a torn or
//! truncated write is detected on read rather than decoded into garbage.

use std::any::Any;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::{fs, io};

use crate::memsize::{put_len, SpillCursor};
use crate::Data;

/// Frame magic for spill files; bump when the framing changes.
const MAGIC: &[u8; 4] = b"SPL1";

/// Bytes of framing around each payload: magic + length + checksum.
const FRAME_OVERHEAD: usize = 4 + 8 + 8;

/// Process-wide sequence so two stores in one process (shuffle + cache, or
/// many test contexts) never share a directory.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a 64-bit over the payload — cheap, dependency-free corruption check.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Accounted directory of spill files. Each [`write`](SpillStore::write)
/// produces one file named by a monotone id; [`read`](SpillStore::read)
/// verifies the frame before returning the payload. Dropping the store
/// removes the whole directory.
pub(crate) struct SpillStore {
    root: PathBuf,
    next_file: AtomicU64,
    disk_bytes: AtomicUsize,
}

impl Default for SpillStore {
    fn default() -> Self {
        sweep_stale_spill_dirs();
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("spangle-spill-{}-{}", std::process::id(), seq));
        SpillStore {
            root,
            next_file: AtomicU64::new(0),
            disk_bytes: AtomicUsize::new(0),
        }
    }
}

/// Best-effort removal of `spangle-spill-<pid>-<seq>` sibling directories
/// left behind by crashed processes (their `Drop` never ran). A dir is
/// stale when its embedded pid no longer exists; liveness is checked via
/// `/proc`, so on platforms without it nothing is removed. Own-process
/// dirs are always kept — a sibling store in this process may still be
/// live.
fn sweep_stale_spill_dirs() {
    let Ok(entries) = fs::read_dir(std::env::temp_dir()) else {
        return;
    };
    if !std::path::Path::new("/proc/self").exists() {
        return;
    }
    let own = std::process::id();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("spangle-spill-") else {
            continue;
        };
        let Some((pid, _seq)) = rest.split_once('-') else {
            continue;
        };
        let Ok(pid) = pid.parse::<u32>() else {
            continue;
        };
        if pid == own || std::path::Path::new(&format!("/proc/{pid}")).exists() {
            continue;
        }
        let _ = fs::remove_dir_all(entry.path());
    }
}

impl SpillStore {
    /// Frame `payload` and write it as a new file. Returns the file id and
    /// the on-disk length (framing included), which the caller must keep to
    /// account the later [`remove`](SpillStore::remove).
    pub(crate) fn write(&self, payload: &[u8]) -> io::Result<(u64, usize)> {
        // The directory is created lazily so contexts that never spill
        // leave no trace in the temp dir.
        fs::create_dir_all(&self.root)?;
        let id = self.next_file.fetch_add(1, Ordering::Relaxed);
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        fs::write(self.root.join(id.to_string()), &frame)?;
        self.disk_bytes.fetch_add(frame.len(), Ordering::Relaxed);
        Ok((id, frame.len()))
    }

    /// Read a spill file back, verifying magic, length, and checksum.
    /// Returns `None` when the file is missing, torn, or corrupt.
    pub(crate) fn read(&self, id: u64) -> Option<Vec<u8>> {
        let frame = fs::read(self.root.join(id.to_string())).ok()?;
        if frame.len() < FRAME_OVERHEAD || &frame[..4] != MAGIC {
            return None;
        }
        let len = u64::from_le_bytes(frame[4..12].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(frame[12..20].try_into().unwrap());
        let payload = &frame[FRAME_OVERHEAD..];
        if payload.len() != len || fnv1a64(payload) != sum {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Delete a spill file and release its accounted bytes. Best-effort:
    /// a file already gone (e.g. a racing rehydrate) is not an error.
    pub(crate) fn remove(&self, id: u64, disk_len: usize) {
        let _ = fs::remove_file(self.root.join(id.to_string()));
        self.disk_bytes.fetch_sub(disk_len, Ordering::Relaxed);
    }

    /// Bytes currently resident in this store's disk tier.
    pub(crate) fn disk_bytes(&self) -> usize {
        self.disk_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Type-erased encode/decode pair for one concrete `Vec<T>` block type.
///
/// The block stores hold payloads as `Arc<dyn Any>`, so by the time memory
/// pressure picks a victim the element type is gone. The codec is captured
/// at the deposit site — the only place `T` is still concrete — as a pair
/// of plain fn pointers, which keeps block entries `Copy`-cheap and avoids
/// boxing a closure per block.
#[derive(Clone, Copy)]
pub(crate) struct SpillCodec {
    encode: fn(&(dyn Any + Send + Sync)) -> Vec<u8>,
    decode: fn(&[u8]) -> Option<Arc<dyn Any + Send + Sync>>,
}

impl SpillCodec {
    /// The codec for `Vec<T>` blocks, or `None` when `T` opted out of
    /// spilling (no stable byte representation, e.g. `&'static str`).
    pub(crate) fn of<T: Data>() -> Option<SpillCodec> {
        fn encode<T: Data>(payload: &(dyn Any + Send + Sync)) -> Vec<u8> {
            let records = payload
                .downcast_ref::<Vec<T>>()
                .expect("spill codec applied to a block of a different type");
            let mut out = Vec::new();
            put_len(&mut out, records.len());
            for record in records {
                record.spill_encode(&mut out);
            }
            out
        }
        fn decode<T: Data>(payload: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
            let mut cur = SpillCursor::new(payload);
            let count = cur.len_prefix()?;
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(T::spill_decode(&mut cur)?);
            }
            // A frame with trailing bytes is corrupt, not short.
            (cur.remaining() == 0).then_some(Arc::new(records) as Arc<dyn Any + Send + Sync>)
        }
        if !T::spillable() {
            return None;
        }
        Some(SpillCodec {
            encode: encode::<T>,
            decode: decode::<T>,
        })
    }

    pub(crate) fn encode(&self, payload: &(dyn Any + Send + Sync)) -> Vec<u8> {
        (self.encode)(payload)
    }

    pub(crate) fn decode(&self, payload: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
        (self.decode)(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_accounts_bytes() {
        let store = SpillStore::default();
        let payload = vec![7u8; 100];
        let (id, disk_len) = store.write(&payload).unwrap();
        assert_eq!(disk_len, payload.len() + FRAME_OVERHEAD);
        assert_eq!(store.disk_bytes(), disk_len);
        assert_eq!(store.read(id).as_deref(), Some(&payload[..]));
        store.remove(id, disk_len);
        assert_eq!(store.disk_bytes(), 0);
        assert!(store.read(id).is_none());
    }

    #[test]
    fn corrupt_frames_read_as_none() {
        let store = SpillStore::default();
        let (id, _) = store.write(b"hello spill tier").unwrap();
        let path = store.root.join(id.to_string());

        // Flip one payload byte: checksum mismatch.
        let mut frame = fs::read(&path).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        fs::write(&path, &frame).unwrap();
        assert!(store.read(id).is_none());

        // Truncate mid-payload: length mismatch.
        frame.truncate(frame.len() - 4);
        fs::write(&path, &frame).unwrap();
        assert!(store.read(id).is_none());

        // Wrong magic.
        frame[0] = b'X';
        fs::write(&path, &frame).unwrap();
        assert!(store.read(id).is_none());
    }

    #[test]
    fn codec_roundtrips_pair_blocks() {
        let codec = SpillCodec::of::<(u64, f64)>().expect("pairs are spillable");
        let block: Vec<(u64, f64)> = (0..64).map(|i| (i, i as f64 * 0.5)).collect();
        let payload: Arc<dyn Any + Send + Sync> = Arc::new(block.clone());
        let bytes = codec.encode(payload.as_ref());
        let back = codec.decode(&bytes).expect("decode");
        assert_eq!(back.downcast_ref::<Vec<(u64, f64)>>().unwrap(), &block);
        // Truncated payloads are rejected, as are trailing bytes.
        assert!(codec.decode(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(codec.decode(&padded).is_none());
    }

    #[test]
    fn unspillable_types_have_no_codec() {
        assert!(SpillCodec::of::<&'static str>().is_none());
        assert!(SpillCodec::of::<(u64, &'static str)>().is_none());
    }

    #[test]
    fn stale_spill_dirs_of_dead_processes_are_swept() {
        if !std::path::Path::new("/proc/self").exists() {
            return; // liveness check needs procfs
        }
        let tmp = std::env::temp_dir();
        // Linux pids cap at 2^22, so this pid can never be alive.
        let stale = tmp.join("spangle-spill-999999999-0");
        let own = tmp.join(format!("spangle-spill-{}-999999", std::process::id()));
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("0"), b"leaked").unwrap();
        fs::create_dir_all(&own).unwrap();

        let _store = SpillStore::default();
        assert!(!stale.exists(), "dead process's spill dir must be removed");
        assert!(own.exists(), "own-process dirs are never swept");
        let _ = fs::remove_dir_all(&own);
    }

    #[test]
    fn dropping_the_store_removes_its_directory() {
        let store = SpillStore::default();
        store.write(b"ephemeral").unwrap();
        let root = store.root.clone();
        assert!(root.exists());
        drop(store);
        assert!(!root.exists());
    }
}
