//! The simulated executor cluster.
//!
//! Each executor of the paper's Spark deployment becomes one worker thread
//! with its own task queue. Partition `p` of every RDD is deterministically
//! *placed* on executor `p % num_executors`, which is what makes
//! co-partitioned ("local") joins genuinely local: both sides of partition
//! `p` are computed on the same executor, no data crosses the (simulated)
//! network, and no shuffle bytes are charged.

use crate::sync::channel::{unbounded, Sender};
use crate::sync::{Mutex, RwLock};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Submitting a task to a pool that is (or finished) shutting down.
///
/// Returned instead of panicking so a driver racing a context teardown can
/// abort its job cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolShutdown;

impl std::fmt::Display for PoolShutdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "executor pool is shut down")
    }
}

impl std::error::Error for PoolShutdown {}

/// Fixed pool of executor threads with per-executor queues.
pub struct ExecutorPool {
    /// Emptied by [`ExecutorPool::shutdown`]; an empty vector means the
    /// pool no longer accepts tasks.
    senders: RwLock<Vec<Sender<Task>>>,
    num_executors: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ExecutorPool {
    /// Spawns `num_executors` worker threads.
    pub fn new(num_executors: usize) -> Self {
        assert!(num_executors > 0, "a cluster needs at least one executor");
        let mut senders = Vec::with_capacity(num_executors);
        let mut handles = Vec::with_capacity(num_executors);
        for i in 0..num_executors {
            let (tx, rx) = unbounded::<Task>();
            let handle = std::thread::Builder::new()
                .name(format!("spangle-executor-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn executor thread");
            senders.push(tx);
            handles.push(handle);
        }
        ExecutorPool {
            senders: RwLock::new(senders),
            num_executors,
            handles: Mutex::new(handles),
        }
    }

    /// Number of executors in the cluster.
    pub fn num_executors(&self) -> usize {
        self.num_executors
    }

    /// Executor a partition is placed on.
    #[inline]
    pub fn executor_for(&self, partition: usize) -> usize {
        partition % self.num_executors
    }

    /// Queues a task on the executor owning `partition`. Fails (instead of
    /// panicking) when the pool has been shut down or the worker thread is
    /// gone, so a job racing a teardown can abort cleanly.
    pub fn submit(&self, partition: usize, task: Task) -> Result<(), PoolShutdown> {
        let senders = self.senders.read();
        if senders.is_empty() {
            return Err(PoolShutdown);
        }
        senders[self.executor_for(partition)]
            .send(task)
            .map_err(|_| PoolShutdown)
    }

    /// Whether [`ExecutorPool::shutdown`] has run.
    pub fn is_shut_down(&self) -> bool {
        self.senders.read().is_empty()
    }

    /// Stops accepting tasks, lets the workers drain their queues, and
    /// joins them. Idempotent: later calls (including the one from `Drop`)
    /// are no-ops.
    pub fn shutdown(&self) {
        // Dropping the senders closes the channels, which ends each
        // worker's recv loop after it drains what was already queued.
        self.senders.write().clear();
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_on_their_assigned_executor() {
        let pool = ExecutorPool::new(3);
        let (tx, rx) = unbounded();
        for p in 0..9 {
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move || {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    tx.send((p, name)).unwrap();
                }),
            )
            .unwrap();
        }
        for _ in 0..9 {
            let (p, name) = rx.recv().unwrap();
            assert_eq!(name, format!("spangle-executor-{}", p % 3));
        }
    }

    #[test]
    fn all_submitted_tasks_complete() {
        let pool = ExecutorPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for p in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
            )
            .unwrap();
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn submit_after_shutdown_fails_without_panicking() {
        let pool = ExecutorPool::new(2);
        pool.submit(0, Box::new(|| {})).unwrap();
        pool.shutdown();
        assert!(pool.is_shut_down());
        assert_eq!(pool.submit(0, Box::new(|| {})), Err(PoolShutdown));
        // A second shutdown (and the one Drop issues later) is a no-op.
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_already_queued_tasks() {
        let pool = ExecutorPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = counter.clone();
            pool.submit(
                0,
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_is_rejected() {
        let _ = ExecutorPool::new(0);
    }
}
