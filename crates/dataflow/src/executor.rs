//! The simulated executor cluster.
//!
//! Each executor of the paper's Spark deployment becomes one worker thread
//! with its own task queue. Partition `p` of every RDD is deterministically
//! *placed* on executor `p % num_executors`, which is what makes
//! co-partitioned ("local") joins genuinely local: both sides of partition
//! `p` are computed on the same executor, no data crosses the (simulated)
//! network, and no shuffle bytes are charged.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Fixed pool of executor threads with per-executor queues.
pub struct ExecutorPool {
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl ExecutorPool {
    /// Spawns `num_executors` worker threads.
    pub fn new(num_executors: usize) -> Self {
        assert!(num_executors > 0, "a cluster needs at least one executor");
        let mut senders = Vec::with_capacity(num_executors);
        let mut handles = Vec::with_capacity(num_executors);
        for i in 0..num_executors {
            let (tx, rx) = unbounded::<Task>();
            let handle = std::thread::Builder::new()
                .name(format!("spangle-executor-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn executor thread");
            senders.push(tx);
            handles.push(handle);
        }
        ExecutorPool { senders, handles }
    }

    /// Number of executors in the cluster.
    pub fn num_executors(&self) -> usize {
        self.senders.len()
    }

    /// Executor a partition is placed on.
    #[inline]
    pub fn executor_for(&self, partition: usize) -> usize {
        partition % self.senders.len()
    }

    /// Queues a task on the executor owning `partition`.
    pub fn submit(&self, partition: usize, task: Task) {
        let executor = self.executor_for(partition);
        self.senders[executor]
            .send(task)
            .expect("executor thread terminated");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Closing the channels lets the workers drain and exit.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_on_their_assigned_executor() {
        let pool = ExecutorPool::new(3);
        let (tx, rx) = unbounded();
        for p in 0..9 {
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move || {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    tx.send((p, name)).unwrap();
                }),
            );
        }
        for _ in 0..9 {
            let (p, name) = rx.recv().unwrap();
            assert_eq!(name, format!("spangle-executor-{}", p % 3));
        }
    }

    #[test]
    fn all_submitted_tasks_complete() {
        let pool = ExecutorPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for p in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
            );
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_is_rejected() {
        let _ = ExecutorPool::new(0);
    }
}
