//! The simulated executor cluster: a locality-aware work-stealing pool.
//!
//! Each executor of the paper's Spark deployment becomes one worker thread
//! with its own task deque. Partition `p` of every RDD is deterministically
//! *placed* on executor `p % num_executors`, which is what makes
//! co-partitioned ("local") joins genuinely local: both sides of partition
//! `p` are computed on the same executor, no data crosses the (simulated)
//! network, and no shuffle bytes are charged.
//!
//! Placement is a *preference*, not a barrier. An executor always serves
//! its own queue first (FIFO), but when that queue is empty it steals one
//! task from the back of the busiest sibling's queue — so a skewed stage
//! no longer leaves most of the cluster idle while one executor drains its
//! backlog. The steal is guarded by [`StealQueues::MIN_STEAL_LEN`]: a
//! sibling that is merely keeping up (at most one queued task) is never
//! robbed, which keeps perfectly balanced co-partitioned work entirely
//! local and its `tasks_stolen` count at zero. Every task learns where it
//! ran via [`TaskInfo`], so the scheduler can charge stolen ("remote")
//! executions to the job's metrics.
//!
//! Tasks submitted through [`ExecutorPool::submit_tagged`] carry a
//! [`TaskTag`] with their job's priority: each executor serves its queue
//! highest-priority-first (FIFO within a priority), which is how the
//! shared scheduler service lets a high-priority job's ready tasks
//! overtake queued lower-priority work. Steals still come from the *back*
//! of the victim's queue — the lowest-priority, newest item — so helping a
//! busy sibling never delays its most urgent task.
//!
//! Each executor is also a *failure domain*. An executor slot carries an
//! incarnation number (*epoch*); [`ExecutorPool::kill`] retires the
//! current incarnation and seats a replacement in the same slot, so
//! partition placement (`p % num_executors`) is unchanged across the loss.
//! A task observes the epoch of the incarnation that started it in
//! [`TaskInfo::epoch`]: when the epoch has moved by the time the task
//! finishes, the task died with its executor and its effects (shuffle
//! blocks, cached partitions — anything stamped with a [`BlockOrigin`] of
//! the dead incarnation) are void. Queued-but-unstarted tasks simply run
//! on the replacement incarnation, exactly like Spark rescheduling a lost
//! executor's pending tasks.

use crate::health::HealthBoard;
use crate::sync::{Mutex, Next, StealQueues};
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle shared between a task attempt and the
/// scheduler that may want to interrupt it.
///
/// The pool installs the token of the task it is about to run in a
/// thread-local slot; operator loops poll it at chunk boundaries via
/// [`cancellation_point`]. Cancelling is a one-way latch: once set, every
/// later check observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Latches the token cancelled. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has run.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Whether two handles share one underlying token — i.e. name the
    /// same task attempt.
    pub(crate) fn same(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Panic payload raised by [`cancellation_point`] when the running task's
/// token was cancelled. The scheduler downcasts this out of the task panic
/// and treats the attempt as interrupted (it charges no retry budget: the
/// driver itself asked for the interruption).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelledError;

thread_local! {
    /// Token of the task currently executing on this worker thread, if any.
    static CURRENT_TOKEN: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
    /// Health slot of the executor this worker thread serves, installed
    /// once at thread start so chunk-boundary instrumentation can stamp
    /// progress without reaching for the pool.
    static CURRENT_HEALTH: RefCell<Option<(Arc<HealthBoard>, usize)>> =
        const { RefCell::new(None) };
}

/// Stamps a chunk-boundary progress tick (which is also a heartbeat) for
/// the executor running this thread. No-op on driver threads.
fn stamp_progress_tick() {
    CURRENT_HEALTH.with(|slot| {
        if let Some((board, executor)) = slot.borrow().as_ref() {
            board.stamp_progress(*executor);
        }
    });
}

/// Stamps a heartbeat *without* a progress tick for the executor running
/// this thread — the injected stall spin uses this to look alive but
/// stuck. No-op on driver threads.
pub(crate) fn stamp_heartbeat_only() {
    CURRENT_HEALTH.with(|slot| {
        if let Some((board, executor)) = slot.borrow().as_ref() {
            board.stamp_heartbeat(*executor);
        }
    });
}

/// Whether the task running on the current thread has been cancelled.
/// Always `false` outside an executor task (driver-side compute).
pub fn is_task_cancelled() -> bool {
    CURRENT_TOKEN.with(|slot| {
        slot.borrow()
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    })
}

/// Health slot of the executor serving the current thread, or `None` on
/// driver threads. The remote data plane uses this to decide *whose*
/// worker process a named operator runs on.
pub(crate) fn current_slot() -> Option<usize> {
    CURRENT_HEALTH.with(|slot| slot.borrow().as_ref().map(|(_, executor)| *executor))
}

/// A cooperative cancellation point: panics with a [`CancelledError`]
/// payload when the current task's token was cancelled, and is a cheap
/// no-op otherwise. Operator loops call this at chunk boundaries so a
/// kill, job abort, expired deadline, or lost speculation race interrupts
/// a *running* task body instead of waiting it out. Each call also stamps
/// a progress tick on the executor's health slot, which is what the
/// driver's no-progress watchdog watches.
pub fn cancellation_point() {
    stamp_progress_tick();
    if is_task_cancelled() {
        std::panic::panic_any(CancelledError);
    }
}

/// Installs (once, process-wide) a panic hook that swallows the default
/// "thread panicked" report for [`CancelledError`] unwinds. Cancellation
/// is normal control flow — a speculation loser or an aborted job's task
/// stopping early — and the worker catches the unwind anyway, so printing
/// a backtrace per cancelled task would just flood stderr. Every other
/// panic still goes to the previously installed hook.
fn silence_cancellation_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelledError>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Amortised [`cancellation_point`] for per-element loops: polls the token
/// once every [`CancelGauge::INTERVAL`] ticks so tight streaming loops pay
/// one increment-and-mask per element, not an atomic load.
#[derive(Debug, Default)]
pub struct CancelGauge(u32);

impl CancelGauge {
    /// Elements between two cancellation polls.
    pub const INTERVAL: u32 = 1024;

    /// Creates a gauge with a fresh counter.
    pub fn new() -> Self {
        CancelGauge(0)
    }

    /// Counts one element; every [`CancelGauge::INTERVAL`]-th call checks
    /// the current task's token (and panics with [`CancelledError`] when
    /// cancelled).
    #[inline]
    pub fn tick(&mut self) {
        self.0 = self.0.wrapping_add(1);
        if self.0.is_multiple_of(Self::INTERVAL) {
            cancellation_point();
        }
    }
}

/// One worker thread's "currently running" slot: the cancel token of the
/// in-flight task body plus the instant it started running.
type RunningSlot = Mutex<Option<(CancelToken, Instant)>>;

/// Where a task was placed and where it actually ran.
#[derive(Clone, Copy, Debug)]
pub struct TaskInfo {
    /// Executor the task's partition is placed on.
    pub home: usize,
    /// Executor whose worker thread ran the task.
    pub ran_on: usize,
    /// Whether the task was stolen (`ran_on != home`).
    pub stolen: bool,
    /// Incarnation of `ran_on` when the task started. If
    /// [`ExecutorPool::epoch`] differs by completion time, the executor
    /// was killed mid-task and the attempt is lost.
    pub epoch: u64,
}

/// Which executor incarnation produced a block (a shuffle map output or a
/// cached partition).
///
/// Blocks are attributed to the executor that computed them so that
/// killing an executor can discard exactly its blocks, and so that a
/// straggler task of a dead incarnation cannot deposit into the stores
/// after its executor was declared lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockOrigin {
    /// Producing executor; `None` for driver-side deposits (tests, seeds).
    executor: Option<usize>,
    /// Incarnation of the producing executor when the block was made.
    epoch: u64,
}

impl BlockOrigin {
    /// A driver-side origin: never tied to an executor, never discarded by
    /// an executor loss.
    pub const DRIVER: BlockOrigin = BlockOrigin {
        executor: None,
        epoch: 0,
    };

    /// The origin of work running on `executor` at incarnation `epoch`.
    pub fn executor(executor: usize, epoch: u64) -> Self {
        BlockOrigin {
            executor: Some(executor),
            epoch,
        }
    }

    /// Whether this block was produced by (any incarnation of) `executor`.
    pub fn lives_on(&self, executor: usize) -> bool {
        self.executor == Some(executor)
    }

    pub(crate) fn executor_epoch(&self) -> Option<(usize, u64)> {
        self.executor.map(|e| (e, self.epoch))
    }
}

/// A unit of executor work. The pool reports through [`TaskInfo`] where
/// the task ended up running.
pub type Task = Box<dyn FnOnce(&TaskInfo) + Send + 'static>;

/// Scheduling tag carried by a submitted task: which job it belongs to and
/// at what priority it should be served.
///
/// The pool orders each executor's queue by `priority` (higher first, FIFO
/// within a priority), so a high-priority job's ready tasks overtake
/// already-queued lower-priority work instead of waiting out the
/// submission interleaving. `job_id` is not used for ordering — it keeps
/// queue contents attributable when debugging a shared scheduler loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskTag {
    /// Job the task belongs to.
    pub job_id: usize,
    /// Queue priority (higher runs first; the default FIFO pool is 0).
    pub priority: i32,
}

/// Submitting a task to a pool that is (or finished) shutting down.
///
/// Returned instead of panicking so a driver racing a context teardown can
/// abort its job cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolShutdown;

impl std::fmt::Display for PoolShutdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "executor pool is shut down")
    }
}

impl std::error::Error for PoolShutdown {}

/// A queued task together with its placement and cancellation handle.
struct PlacedTask {
    home: usize,
    run: Task,
    /// Token the worker installs for the duration of the task body, so
    /// `cancellation_point()` inside the closure observes driver-side
    /// cancellations (kill, abort, deadline, lost speculation race).
    token: Option<CancelToken>,
}

/// Per-executor counters, updated by the owning worker thread.
#[derive(Debug, Default)]
struct ExecutorStats {
    /// Nanoseconds spent inside task bodies on this executor.
    busy_nanos: AtomicU64,
    /// Tasks this executor ran that were placed on a sibling.
    tasks_stolen: AtomicU64,
}

/// Fixed pool of executor threads over work-stealing per-executor deques.
pub struct ExecutorPool {
    queues: Arc<StealQueues<PlacedTask>>,
    stats: Arc<Vec<ExecutorStats>>,
    /// Incarnation counter per executor slot; bumped by
    /// [`ExecutorPool::kill`].
    epochs: Arc<Vec<AtomicU64>>,
    /// Last incarnation of each slot to *complete* a task. A slot whose
    /// current epoch is ahead of this is a freshly-seated replacement that
    /// is still warming up (see [`ExecutorPool::warming_replacements`]).
    active_epochs: Arc<Vec<AtomicU64>>,
    /// Token of the task each worker thread is currently running, if any,
    /// with the instant the body started: [`ExecutorPool::kill`] cancels
    /// the victim slot's entry so the dead incarnation's in-flight body
    /// stops at its next cancellation point, and the speculation planner
    /// measures a straggler's *running* time from the stamp (queue time
    /// must not count toward the median-multiple threshold).
    running: Arc<Vec<RunningSlot>>,
    /// Heartbeat/progress/quarantine state per executor slot, stamped by
    /// the worker threads and read by the driver's health monitor.
    health: Arc<HealthBoard>,
    num_executors: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Stop flag for the heartbeater thread (see
    /// [`ExecutorPool::start_heartbeater`]); the thread's handle joins the
    /// workers' in `handles`.
    heartbeater_stop: Arc<AtomicBool>,
}

impl ExecutorPool {
    /// Spawns `num_executors` worker threads.
    pub fn new(num_executors: usize) -> Self {
        assert!(num_executors > 0, "a cluster needs at least one executor");
        silence_cancellation_panics();
        let queues = Arc::new(StealQueues::<PlacedTask>::new(num_executors));
        let stats: Arc<Vec<ExecutorStats>> = Arc::new(
            (0..num_executors)
                .map(|_| ExecutorStats::default())
                .collect(),
        );
        let epochs: Arc<Vec<AtomicU64>> =
            Arc::new((0..num_executors).map(|_| AtomicU64::new(0)).collect());
        let active_epochs: Arc<Vec<AtomicU64>> =
            Arc::new((0..num_executors).map(|_| AtomicU64::new(0)).collect());
        let running: Arc<Vec<RunningSlot>> =
            Arc::new((0..num_executors).map(|_| Mutex::new(None)).collect());
        let health = Arc::new(HealthBoard::new(num_executors));
        let mut handles = Vec::with_capacity(num_executors);
        for i in 0..num_executors {
            let queues = Arc::clone(&queues);
            let stats = Arc::clone(&stats);
            let epochs = Arc::clone(&epochs);
            let active_epochs = Arc::clone(&active_epochs);
            let running = Arc::clone(&running);
            let health = Arc::clone(&health);
            let handle = std::thread::Builder::new()
                .name(format!("spangle-executor-{i}"))
                .spawn(move || {
                    // Install this worker's health slot so chunk-boundary
                    // instrumentation (cancellation_point) can stamp
                    // progress from inside task bodies.
                    CURRENT_HEALTH.with(|slot| *slot.borrow_mut() = Some((Arc::clone(&health), i)));
                    loop {
                        let (task, stolen) = match queues.next(i) {
                            Next::Local(task) => (task, false),
                            Next::Stolen { item, .. } => (item, true),
                            Next::Closed => break,
                        };
                        health.stamp_heartbeat(i);
                        let info = TaskInfo {
                            home: task.home,
                            ran_on: i,
                            stolen,
                            epoch: epochs[i].load(Ordering::SeqCst),
                        };
                        if stolen {
                            stats[i].tasks_stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        // Publish the task's token so kill/shutdown can reach
                        // the running body, and install it thread-locally so
                        // cancellation_point() inside the closure sees it.
                        let started = Instant::now();
                        *running[i].lock() = task.token.clone().map(|t| (t, started));
                        CURRENT_TOKEN.with(|slot| *slot.borrow_mut() = task.token);
                        // A panicking task must not take the worker down with
                        // it: orphaning the executor's queue would strand
                        // later local tasks. The scheduler catches panics
                        // inside its own task bodies anyway; this is the
                        // backstop for raw pool users.
                        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| (task.run)(&info)));
                        CURRENT_TOKEN.with(|slot| *slot.borrow_mut() = None);
                        *running[i].lock() = None;
                        health.stamp_heartbeat(i);
                        stats[i]
                            .busy_nanos
                            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        // The incarnation that started this task has now
                        // completed one; it is no longer a warming replacement.
                        // Tasks run serially per worker, so the stored epoch is
                        // monotone even without a compare-exchange.
                        active_epochs[i].store(info.epoch, Ordering::SeqCst);
                    }
                })
                .expect("failed to spawn executor thread");
            handles.push(handle);
        }
        ExecutorPool {
            queues,
            stats,
            epochs,
            active_epochs,
            running,
            health,
            num_executors,
            handles: Mutex::new(handles),
            heartbeater_stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Spawns the pool's dedicated heartbeater: one thread stamping every
    /// executor slot's heartbeat each half-`interval` (paused slots are
    /// suppressed by the board, which is how tests inject silence).
    ///
    /// Heartbeats deliberately do NOT ride the task bodies alone: a body
    /// deep in a long compute kernel may not reach a chunk boundary for
    /// seconds, and a busy executor is not a dead one — killing it would
    /// discard committed map output and melt down into recompute storms.
    /// This thread models the dedicated heartbeater a remote executor
    /// *process* would run (as in Spark's driver-side HeartbeatReceiver):
    /// heartbeat silence means the executor is gone, not slow. Task-level
    /// hangs stay the no-progress watchdog's job, whose response (a
    /// first-completion-wins duplicate) is safe against false positives.
    /// Idempotent; the thread exits on [`ExecutorPool::shutdown`].
    pub(crate) fn start_heartbeater(&self, interval: Duration) {
        let mut handles = self.handles.lock();
        if self.heartbeater_stop.load(Ordering::SeqCst)
            || handles
                .iter()
                .any(|h| h.thread().name() == Some("spangle-heartbeat"))
        {
            return;
        }
        let health = Arc::clone(&self.health);
        let stop = Arc::clone(&self.heartbeater_stop);
        let n = self.num_executors;
        let step = (interval / 2).clamp(Duration::from_millis(1), Duration::from_millis(50));
        let handle = std::thread::Builder::new()
            .name("spangle-heartbeat".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    for e in 0..n {
                        health.stamp_heartbeat(e);
                    }
                    std::thread::sleep(step);
                }
            })
            .expect("failed to spawn heartbeater thread");
        handles.push(handle);
    }

    /// Number of executors in the cluster.
    pub fn num_executors(&self) -> usize {
        self.num_executors
    }

    /// Current incarnation of an executor slot (0 until its first kill).
    pub fn epoch(&self, executor: usize) -> u64 {
        self.epochs[executor].load(Ordering::SeqCst)
    }

    /// Kills the current incarnation of `executor` and seats a replacement
    /// in the same slot, returning the replacement's epoch.
    ///
    /// Placement is untouched (`p % num_executors` still maps to the same
    /// slot), queued-but-unstarted tasks run on the replacement, and any
    /// task the dead incarnation had in flight observes the epoch change at
    /// completion and is reported lost by the scheduler. Discarding the
    /// dead incarnation's blocks is the caller's job (see
    /// `SpangleContext::kill_executor`).
    ///
    /// The task the dead incarnation had in flight is also cancelled
    /// through its [`CancelToken`] (when it carries one): the body stops at
    /// its next cancellation point instead of running its remainder to
    /// completion just to be declared lost.
    pub fn kill(&self, executor: usize) -> u64 {
        let epoch = self.epochs[executor].fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((token, _)) = self.running[executor].lock().as_ref() {
            token.cancel();
        }
        // The replacement incarnation starts with a fresh, un-paused
        // heartbeat — a lost executor must not look lost again the moment
        // it is reseated.
        self.health.reset_after_kill(executor);
        epoch
    }

    /// Whether `executor`'s current incarnation is a warming replacement:
    /// it was seated by [`ExecutorPool::kill`] and has not yet completed a
    /// task. A freshly-constructed pool is never warming (epoch 0 counts
    /// as warmed at birth).
    pub fn is_warming(&self, executor: usize) -> bool {
        self.epochs[executor].load(Ordering::SeqCst)
            != self.active_epochs[executor].load(Ordering::SeqCst)
    }

    /// Number of executor slots whose replacement incarnation has not yet
    /// completed its first task. The admission controller treats these
    /// slots as missing capacity (`num_executors - warming_replacements()`
    /// healthy executors) until they prove themselves.
    pub fn warming_replacements(&self) -> usize {
        (0..self.num_executors)
            .filter(|&e| self.is_warming(e))
            .count()
    }

    /// Whether the incarnation that produced `origin` is still alive.
    /// Driver-side origins are always live.
    pub fn origin_is_live(&self, origin: BlockOrigin) -> bool {
        match origin.executor_epoch() {
            Some((executor, epoch)) => self.epoch(executor) == epoch,
            None => true,
        }
    }

    /// Executor a partition is placed on.
    #[inline]
    pub fn executor_for(&self, partition: usize) -> usize {
        partition % self.num_executors
    }

    /// Queues a task on the executor owning `partition` (an idle sibling
    /// may steal it) at the default priority. Fails (instead of panicking)
    /// when the pool has been shut down, so a job racing a teardown can
    /// abort cleanly.
    pub fn submit(&self, partition: usize, task: Task) -> Result<(), PoolShutdown> {
        self.submit_tagged(partition, TaskTag::default(), task)
    }

    /// Queues a task on the executor owning `partition`, ordered by the
    /// tag's job priority: a higher-priority task is popped before any
    /// queued lower-priority work, FIFO within a priority. Fails when the
    /// pool has been shut down.
    pub fn submit_tagged(
        &self,
        partition: usize,
        tag: TaskTag,
        task: Task,
    ) -> Result<(), PoolShutdown> {
        let home = self.health.place(self.executor_for(partition));
        self.submit_on(home, tag, None, task)
    }

    /// Queues a task on the executor owning `partition` with a
    /// cancellation token: the worker installs the token around the task
    /// body so `cancellation_point()` inside the closure observes
    /// driver-side cancellations. Fails when the pool has been shut down.
    pub fn submit_cancellable(
        &self,
        partition: usize,
        tag: TaskTag,
        token: CancelToken,
        task: Task,
    ) -> Result<(), PoolShutdown> {
        let home = self.health.place(self.executor_for(partition));
        self.submit_on(home, tag, Some(token), task)
    }

    /// Queues a task on an *explicit* executor, bypassing partition
    /// placement — the speculative-execution path, which deliberately runs
    /// a duplicate attempt away from the straggler's home slot. An idle
    /// sibling may still steal it during a drain.
    pub fn submit_on(
        &self,
        executor: usize,
        tag: TaskTag,
        token: Option<CancelToken>,
        task: Task,
    ) -> Result<(), PoolShutdown> {
        self.queues
            .push_prio(
                executor,
                tag.priority,
                PlacedTask {
                    home: executor,
                    run: task,
                    token,
                },
            )
            .map_err(|_| PoolShutdown)
    }

    /// Shared heartbeat/progress/quarantine board for this pool's
    /// executors. Workers stamp it; the driver's health monitor reads it
    /// and flips quarantine states on it.
    pub(crate) fn health_board(&self) -> Arc<HealthBoard> {
        Arc::clone(&self.health)
    }

    /// Bans or re-admits `executor` as a *thief*: a banned worker drains
    /// its own queue but never steals from siblings (siblings may still
    /// steal from it). Used while an executor is quarantined so it cannot
    /// pull healthy work onto itself.
    pub(crate) fn set_steal_ban(&self, executor: usize, banned: bool) {
        self.queues.set_steal_ban(executor, banned);
    }

    /// Queued (not yet started) tasks per executor, indexed by executor id.
    /// Racy; used by the speculation planner to pick an idle slot for a
    /// duplicate attempt.
    pub fn queue_lens(&self) -> Vec<usize> {
        (0..self.num_executors)
            .map(|e| self.queues.len(e))
            .collect()
    }

    /// The executor currently executing the task that holds `token` and
    /// the instant its body started, if it is running at all. Racy like
    /// [`ExecutorPool::queue_lens`] — a completion can slip in after the
    /// scan — but a straggler past the speculation threshold stays put,
    /// which is what the speculation planner needs this for: the run
    /// stamp keeps queue time out of the straggler threshold (a task
    /// parked behind a straggler is not itself slow), and the slot index
    /// keeps the duplicate from queuing *behind* the very task it is
    /// meant to outrun (a one-task backlog behind a wedged body is never
    /// stolen).
    pub fn executor_running(&self, token: &CancelToken) -> Option<(usize, Instant)> {
        self.running.iter().enumerate().find_map(|(i, slot)| {
            slot.lock()
                .as_ref()
                .filter(|(t, _)| t.same(token))
                .map(|(_, started)| (i, *started))
        })
    }

    /// Whether [`ExecutorPool::shutdown`] has run.
    pub fn is_shut_down(&self) -> bool {
        self.queues.is_closed()
    }

    /// Nanoseconds each executor has spent running task bodies, indexed by
    /// executor id.
    pub fn busy_nanos(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Relaxed))
            .collect()
    }

    /// Tasks each executor ran that were placed on a sibling, indexed by
    /// the executor that did the stealing.
    pub fn steals_per_executor(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.tasks_stolen.load(Ordering::Relaxed))
            .collect()
    }

    /// Total tasks that ran away from their placed executor.
    pub fn tasks_stolen(&self) -> u64 {
        self.steals_per_executor().iter().sum()
    }

    /// Stops accepting tasks, lets the workers drain every already-queued
    /// task (stealing freely during the drain, so even a task whose home
    /// executor is wedged runs exactly once), and joins them. Tokens of
    /// tasks running at shutdown are cancelled so a cooperative straggler
    /// cannot hang the teardown forever. Idempotent: later calls
    /// (including the one from `Drop`) are no-ops.
    pub fn shutdown(&self) {
        self.queues.close();
        self.heartbeater_stop.store(true, Ordering::SeqCst);
        for slot in self.running.iter() {
            if let Some((token, _)) = slot.lock().as_ref() {
                token.cancel();
            }
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::channel::unbounded;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn unstolen_tasks_run_on_their_assigned_executor() {
        let pool = ExecutorPool::new(3);
        let (tx, rx) = unbounded();
        for p in 0..9 {
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move |info: &TaskInfo| {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    tx.send((p, *info, name)).unwrap();
                }),
            )
            .unwrap();
        }
        for _ in 0..9 {
            let (p, info, name) = rx.recv().unwrap();
            assert_eq!(info.home, p % 3, "placement is p % num_executors");
            assert_eq!(name, format!("spangle-executor-{}", info.ran_on));
            if !info.stolen {
                assert_eq!(info.ran_on, info.home);
            } else {
                assert_ne!(info.ran_on, info.home);
            }
        }
    }

    #[test]
    fn all_submitted_tasks_complete() {
        let pool = ExecutorPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for p in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(
                p,
                Box::new(move |_: &TaskInfo| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
            )
            .unwrap();
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn skewed_backlog_is_stolen_by_idle_siblings() {
        let pool = ExecutorPool::new(2);
        let (tx, rx) = unbounded();
        // Wedge executor 0 on a slow task, then pile more tasks onto its
        // queue while executor 1 has nothing: the backlog must be stolen.
        pool.submit(
            0,
            Box::new(|_: &TaskInfo| std::thread::sleep(Duration::from_millis(100))),
        )
        .unwrap();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.submit(0, Box::new(move |info: &TaskInfo| tx.send(*info).unwrap()))
                .unwrap();
        }
        let infos: Vec<TaskInfo> = (0..4).map(|_| rx.recv().unwrap()).collect();
        let stolen = infos.iter().filter(|i| i.stolen).count();
        assert!(stolen >= 1, "executor 1 must have stolen from the backlog");
        assert!(pool.tasks_stolen() >= 1);
        assert_eq!(pool.steals_per_executor()[0], 0, "executor 0 never stole");
    }

    #[test]
    fn balanced_one_task_per_executor_never_steals() {
        let pool = ExecutorPool::new(4);
        let (tx, rx) = unbounded();
        for p in 0..4 {
            let tx = tx.clone();
            pool.submit(p, Box::new(move |info: &TaskInfo| tx.send(*info).unwrap()))
                .unwrap();
        }
        for _ in 0..4 {
            let info = rx.recv().unwrap();
            assert!(!info.stolen, "a lone placed task must stay local");
            assert_eq!(info.ran_on, info.home);
        }
        assert_eq!(pool.tasks_stolen(), 0);
    }

    #[test]
    fn busy_time_is_accounted_per_executor() {
        let pool = ExecutorPool::new(2);
        let (tx, rx) = unbounded();
        pool.submit(
            0,
            Box::new(move |_: &TaskInfo| {
                std::thread::sleep(Duration::from_millis(30));
                tx.send(()).unwrap();
            }),
        )
        .unwrap();
        rx.recv().unwrap();
        // The worker accounts busy time just after the task returns; poll
        // briefly for it.
        let want = Duration::from_millis(25).as_nanos() as u64;
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let busy = pool.busy_nanos();
            assert_eq!(busy.len(), 2);
            if busy[0] >= want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "executor 0 slept ~30ms, busy was {busy:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn tagged_high_priority_tasks_overtake_queued_default_work() {
        let pool = ExecutorPool::new(1);
        let (wedge_tx, wedge_rx) = unbounded::<()>();
        // Hold the lone executor so the later submissions stack up.
        pool.submit(
            0,
            Box::new(move |_: &TaskInfo| {
                let _ = wedge_rx.recv();
            }),
        )
        .unwrap();
        let (tx, rx) = unbounded();
        for label in ["default-1", "default-2"] {
            let tx = tx.clone();
            pool.submit(0, Box::new(move |_: &TaskInfo| tx.send(label).unwrap()))
                .unwrap();
        }
        let high = TaskTag {
            job_id: 42,
            priority: 10,
        };
        pool.submit_tagged(
            0,
            high,
            Box::new(move |_: &TaskInfo| tx.send("high").unwrap()),
        )
        .unwrap();
        wedge_tx.send(()).unwrap();
        let order: Vec<&str> = (0..3).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(
            order,
            vec!["high", "default-1", "default-2"],
            "priority 10 must jump the default-priority backlog"
        );
    }

    #[test]
    fn submit_after_shutdown_fails_without_panicking() {
        let pool = ExecutorPool::new(2);
        pool.submit(0, Box::new(|_: &TaskInfo| {})).unwrap();
        pool.shutdown();
        assert!(pool.is_shut_down());
        assert!(pool.submit(0, Box::new(|_: &TaskInfo| {})).is_err());
        // A second shutdown (and the one Drop issues later) is a no-op.
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_already_queued_tasks() {
        let pool = ExecutorPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = counter.clone();
            pool.submit(
                0,
                Box::new(move |_: &TaskInfo| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    /// The stealing pool's shutdown contract: every already-submitted task
    /// runs exactly once, including tasks that end up on a sibling's
    /// steal-side because their home executor is wedged.
    #[test]
    fn shutdown_runs_every_task_exactly_once_across_steals() {
        let pool = ExecutorPool::new(2);
        let (release_tx, release_rx) = unbounded::<()>();
        // Wedge executor 0 until released.
        pool.submit(
            0,
            Box::new(move |_: &TaskInfo| {
                let _ = release_rx.recv();
            }),
        )
        .unwrap();
        const N: usize = 20;
        let runs: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        for t in 0..N {
            let runs = Arc::clone(&runs);
            // All placed on the wedged executor 0.
            pool.submit(
                0,
                Box::new(move |_: &TaskInfo| {
                    runs[t].fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        }
        // Unwedge concurrently with the shutdown drain.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let _ = release_tx.send(());
        });
        pool.shutdown();
        releaser.join().unwrap();
        for (t, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "task {t} must run exactly once"
            );
        }
        assert!(
            pool.tasks_stolen() >= 1,
            "executor 1 must have drained the wedged sibling's backlog"
        );
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = ExecutorPool::new(1);
        let (tx, rx) = unbounded();
        pool.submit(0, Box::new(|_: &TaskInfo| panic!("task panic")))
            .unwrap();
        pool.submit(0, Box::new(move |_: &TaskInfo| tx.send(()).unwrap()))
            .unwrap();
        rx.recv()
            .expect("the worker must survive a panicking task and run the next one");
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_is_rejected() {
        let _ = ExecutorPool::new(0);
    }

    /// A kill leaves the replacement incarnation "warming" until it
    /// completes its first task; a fresh pool starts fully warmed.
    #[test]
    fn replacement_warms_up_by_completing_a_task() {
        let pool = ExecutorPool::new(2);
        assert_eq!(pool.warming_replacements(), 0, "fresh pool is warmed");
        pool.kill(0);
        assert!(pool.is_warming(0));
        assert!(!pool.is_warming(1));
        assert_eq!(pool.warming_replacements(), 1);
        let (tx, rx) = unbounded();
        pool.submit(0, Box::new(move |_: &TaskInfo| tx.send(()).unwrap()))
            .unwrap();
        rx.recv().unwrap();
        // The worker stores the warmed epoch just after the task body
        // returns; poll briefly for it.
        let deadline = Instant::now() + Duration::from_secs(2);
        while pool.is_warming(0) {
            assert!(
                Instant::now() < deadline,
                "replacement must be warmed after completing a task"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.warming_replacements(), 0);
    }

    /// Killing an executor retires the running incarnation: a task started
    /// before the kill sees a stale epoch at completion, while a task
    /// queued behind it runs on the replacement incarnation in the same
    /// slot (placement unchanged).
    #[test]
    fn kill_retires_the_incarnation_but_keeps_the_slot() {
        let pool = Arc::new(ExecutorPool::new(2));
        assert_eq!(pool.epoch(0), 0);
        let (started_tx, started_rx) = unbounded::<()>();
        let (release_tx, release_rx) = unbounded::<()>();
        let (tx, rx) = unbounded();
        // Wedge executor 1 so it cannot steal executor 0's backlog — the
        // test needs both tasks to run in their home slot.
        let (wedge_tx, wedge_rx) = unbounded::<()>();
        pool.submit(
            1,
            Box::new(move |_: &TaskInfo| {
                let _ = wedge_rx.recv();
            }),
        )
        .unwrap();
        {
            let tx = tx.clone();
            pool.submit(
                0,
                Box::new(move |info: &TaskInfo| {
                    started_tx.send(()).unwrap();
                    let _ = release_rx.recv();
                    tx.send(("victim", *info)).unwrap();
                }),
            )
            .unwrap();
        }
        pool.submit(
            0,
            Box::new(move |info: &TaskInfo| tx.send(("next", *info)).unwrap()),
        )
        .unwrap();
        started_rx.recv().unwrap();
        // Kill while the first task is mid-flight.
        assert_eq!(pool.kill(0), 1);
        assert_eq!(pool.epoch(0), 1);
        release_tx.send(()).unwrap();
        let (label, info) = rx.recv().unwrap();
        assert_eq!(label, "victim");
        assert_eq!(info.epoch, 0, "in-flight task carries the dead epoch");
        assert!(!pool.origin_is_live(BlockOrigin::executor(info.ran_on, info.epoch)));
        let (label, info) = rx.recv().unwrap();
        assert_eq!(label, "next");
        assert_eq!(info.ran_on, 0, "placement survives the kill");
        assert_eq!(info.epoch, 1, "queued task runs on the replacement");
        assert!(pool.origin_is_live(BlockOrigin::executor(0, 1)));
        assert!(pool.origin_is_live(BlockOrigin::DRIVER));
        assert_eq!(pool.epoch(1), 0, "sibling executors are untouched");
        wedge_tx.send(()).unwrap();
    }

    /// A cooperative busy-loop body stops at its next cancellation point
    /// once its token is cancelled, instead of running forever.
    #[test]
    fn cancelled_token_interrupts_a_running_body() {
        let pool = ExecutorPool::new(1);
        let token = CancelToken::new();
        let (started_tx, started_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<&'static str>();
        pool.submit_on(
            0,
            TaskTag::default(),
            Some(token.clone()),
            Box::new(move |_: &TaskInfo| {
                started_tx.send(()).unwrap();
                let outcome = std::panic::catch_unwind(|| loop {
                    cancellation_point();
                    std::thread::sleep(Duration::from_millis(1));
                });
                let label = match outcome {
                    Err(payload) if payload.downcast_ref::<CancelledError>().is_some() => {
                        "cancelled"
                    }
                    _ => "other",
                };
                done_tx.send(label).unwrap();
            }),
        )
        .unwrap();
        started_rx.recv().unwrap();
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(
            done_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("body must stop after cancellation"),
            "cancelled"
        );
    }

    /// Killing an executor cancels the token of the task it was running,
    /// and a later task on the replacement starts with a clean slate.
    #[test]
    fn kill_cancels_the_running_tasks_token() {
        let pool = ExecutorPool::new(1);
        let token = CancelToken::new();
        let (started_tx, started_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<bool>();
        pool.submit_on(
            0,
            TaskTag::default(),
            Some(token.clone()),
            Box::new(move |_: &TaskInfo| {
                started_tx.send(()).unwrap();
                while !is_task_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                done_tx.send(true).unwrap();
            }),
        )
        .unwrap();
        started_rx.recv().unwrap();
        pool.kill(0);
        assert!(done_rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert!(token.is_cancelled());
        // The replacement incarnation runs later tasks uncancelled.
        let (tx, rx) = unbounded();
        pool.submit(
            0,
            Box::new(move |_: &TaskInfo| tx.send(is_task_cancelled()).unwrap()),
        )
        .unwrap();
        assert!(
            !rx.recv().unwrap(),
            "a fresh task must not inherit the dead attempt's token"
        );
    }
}
