//! Deterministic failure injection for fault-tolerance testing.
//!
//! Spark's headline property — and the one ArrayRDD inherits — is that lost
//! work is recomputed from lineage. The injector lets tests kill specific
//! task attempts or whole executors
//! ([`FailureInjector::kill_executor_after`] arms a kill that fires after
//! an executor finishes its Nth task, taking that task's attempt and every
//! block of the dead incarnation with it); dropping individual cached
//! blocks is done directly through [`crate::cache::BlockManager::evict`].

use crate::sync::Mutex;
use std::collections::{HashMap, VecDeque};

/// Identifies a schedulable task: the RDD whose partition the task produces
/// (for result stages) or the shuffle map side's parent RDD (for shuffle
/// stages), plus the partition index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskSite {
    /// RDD whose partition the task produces.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

/// Injects failures into the first N attempts of selected tasks, or into
/// the next N task attempts regardless of site.
#[derive(Default)]
pub struct FailureInjector {
    /// Remaining number of failures to inject per site.
    remaining: Mutex<HashMap<TaskSite, usize>>,
    /// Remaining site-independent failures.
    any: std::sync::atomic::AtomicUsize,
    /// Per-executor queue of armed kills: each entry is a countdown of
    /// tasks until that executor (incarnation) is killed; the next
    /// countdown starts once the previous kill fired.
    kill_after: Mutex<HashMap<usize, VecDeque<usize>>>,
    /// Remaining number of wedges to inject per site (see
    /// [`FailureInjector::wedge_task`]).
    wedged: Mutex<HashMap<TaskSite, usize>>,
}

impl FailureInjector {
    /// Makes the next `times` attempts of the task computing `partition` of
    /// `rdd_id` fail with [`crate::TaskError::Injected`].
    ///
    /// Arming the same site again *accumulates*: two `fail_task(r, p, 2)`
    /// calls kill four attempts, not two (a second arm used to silently
    /// overwrite the first).
    ///
    /// The site only matches tasks *scheduled* for that RDD: result-stage
    /// tasks of an action's target RDD, or map tasks of a shuffle's
    /// immediate parent. Narrow ancestors recomputed inside a task are not
    /// separate sites — use [`FailureInjector::fail_next_tasks`] to kill
    /// tasks without knowing the plan.
    pub fn fail_task(&self, rdd_id: usize, partition: usize, times: usize) {
        let mut map = self.remaining.lock();
        let slot = map.entry(TaskSite { rdd_id, partition }).or_insert(0);
        *slot = slot.saturating_add(times);
        if *slot == 0 {
            map.remove(&TaskSite { rdd_id, partition });
        }
    }

    /// Arms a kill of `executor` that fires right after it finishes its
    /// `tasks`-th scheduled task from now (so `tasks = 1` kills it after
    /// the very next task it runs). The kill goes through
    /// `SpangleContext::kill_executor`: the finishing task's attempt is
    /// lost with the executor ([`crate::TaskError::ExecutorLost`]), the
    /// dead incarnation's shuffle blocks and cached partitions are
    /// discarded, and a replacement is seated in the same slot. Each call
    /// arms one more kill: countdowns queue up, so arming `(e, 1)` three
    /// times kills three successive incarnations of slot `e`, one task
    /// each.
    pub fn kill_executor_after(&self, executor: usize, tasks: usize) {
        assert!(tasks > 0, "a kill needs at least one task to fire after");
        self.kill_after
            .lock()
            .entry(executor)
            .or_default()
            .push_back(tasks);
    }

    /// Counts one finished scheduled task on `executor`; `true` when an
    /// armed kill just hit zero and the caller must kill the executor.
    pub(crate) fn take_executor_kill(&self, executor: usize) -> bool {
        let mut map = self.kill_after.lock();
        let Some(queue) = map.get_mut(&executor) else {
            return false;
        };
        let front = queue
            .front_mut()
            .expect("armed kill queues are never left empty");
        *front -= 1;
        if *front > 0 {
            return false;
        }
        queue.pop_front();
        if queue.is_empty() {
            map.remove(&executor);
        }
        true
    }

    /// Wedges the next `times` attempts of the task computing `partition`
    /// of `rdd_id`: instead of running its body, a wedged attempt spins at
    /// a cancellation point until cooperative cancellation interrupts it —
    /// the deterministic straggler for speculation and deadline-preemption
    /// tests. Each matching attempt consumes one wedge, so with `times =
    /// 1` the speculative duplicate (or a retry) of the same task runs
    /// clean while the original hangs.
    pub fn wedge_task(&self, rdd_id: usize, partition: usize, times: usize) {
        if times == 0 {
            return;
        }
        let mut map = self.wedged.lock();
        let slot = map.entry(TaskSite { rdd_id, partition }).or_insert(0);
        *slot = slot.saturating_add(times);
    }

    /// Consumes one armed wedge for the site, if any remain.
    pub(crate) fn take_wedge(&self, site: TaskSite) -> bool {
        let mut map = self.wedged.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// Makes the next `n` distinct tasks fail their first attempt, whatever
    /// they compute.
    ///
    /// Only first attempts are killed; a retry of an already-killed task is
    /// spared even while injections remain. Otherwise an instantly-failing
    /// retry could race ahead of its sibling tasks and burn through the
    /// whole budget (aborting the job), which is never what a recovery test
    /// armed with this method wants. Use [`FailureInjector::fail_task`] to
    /// kill retries of a specific task.
    pub fn fail_next_tasks(&self, n: usize) {
        self.any.fetch_add(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Consumes one injected failure for the site, if any remain.
    pub(crate) fn should_fail(&self, site: TaskSite, attempt: usize) -> bool {
        // Site-independent injections first; they only apply to first
        // attempts (see `fail_next_tasks`).
        if attempt == 0 {
            let mut current = self.any.load(std::sync::atomic::Ordering::SeqCst);
            while current > 0 {
                match self.any.compare_exchange(
                    current,
                    current - 1,
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                ) {
                    Ok(_) => return true,
                    Err(now) => current = now,
                }
            }
        }
        let mut map = self.remaining.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// True when no injections are pending — site-specific failures,
    /// site-independent failures, and armed executor kills alike (useful
    /// to assert a test consumed everything it armed).
    pub fn is_drained(&self) -> bool {
        self.remaining.lock().is_empty()
            && self.any.load(std::sync::atomic::Ordering::SeqCst) == 0
            && self.kill_after.lock().is_empty()
            && self.wedged.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fails_exactly_n_times() {
        let inj = FailureInjector::default();
        inj.fail_task(7, 2, 2);
        let site = TaskSite {
            rdd_id: 7,
            partition: 2,
        };
        assert!(inj.should_fail(site, 0));
        assert!(inj.should_fail(site, 1));
        assert!(!inj.should_fail(site, 2));
        assert!(inj.is_drained());
    }

    #[test]
    fn unarmed_sites_never_fail() {
        let inj = FailureInjector::default();
        assert!(!inj.should_fail(
            TaskSite {
                rdd_id: 0,
                partition: 0
            },
            0
        ));
    }

    /// Regression: a second `fail_task` for the same site used to
    /// overwrite the first arm's remaining count; it must accumulate.
    #[test]
    fn rearming_a_site_accumulates_instead_of_overwriting() {
        let inj = FailureInjector::default();
        inj.fail_task(3, 1, 2);
        inj.fail_task(3, 1, 1);
        let site = TaskSite {
            rdd_id: 3,
            partition: 1,
        };
        for attempt in 0..3 {
            assert!(inj.should_fail(site, attempt), "attempt {attempt} armed");
        }
        assert!(!inj.should_fail(site, 3));
        assert!(inj.is_drained());
        // Arming zero times is a no-op, not a pending entry.
        inj.fail_task(4, 0, 0);
        assert!(inj.is_drained());
    }

    #[test]
    fn executor_kills_fire_in_armed_order_and_drain() {
        let inj = FailureInjector::default();
        inj.kill_executor_after(1, 2);
        inj.kill_executor_after(1, 1);
        assert!(!inj.is_drained());
        assert!(!inj.take_executor_kill(0), "unarmed executors never die");
        assert!(!inj.take_executor_kill(1), "first countdown at 1 of 2");
        assert!(inj.take_executor_kill(1), "first kill fires");
        assert!(
            inj.take_executor_kill(1),
            "second armed kill fires one task later"
        );
        assert!(!inj.take_executor_kill(1));
        assert!(inj.is_drained());
    }

    #[test]
    fn wedges_are_consumed_one_shot_per_site() {
        let inj = FailureInjector::default();
        inj.wedge_task(5, 0, 1);
        let site = TaskSite {
            rdd_id: 5,
            partition: 0,
        };
        assert!(!inj.is_drained());
        assert!(inj.take_wedge(site), "first attempt wedges");
        assert!(
            !inj.take_wedge(site),
            "the speculative duplicate runs clean"
        );
        assert!(inj.is_drained());
        inj.wedge_task(5, 0, 0);
        assert!(inj.is_drained(), "arming zero wedges is a no-op");
    }

    #[test]
    fn site_independent_injections_spare_retries() {
        let inj = FailureInjector::default();
        inj.fail_next_tasks(2);
        let a = TaskSite {
            rdd_id: 1,
            partition: 0,
        };
        let b = TaskSite {
            rdd_id: 1,
            partition: 1,
        };
        assert!(inj.should_fail(a, 0));
        // The retry of `a` must not consume the second injection...
        assert!(!inj.should_fail(a, 1));
        // ...which is left for the first attempt of a different task.
        assert!(inj.should_fail(b, 0));
        assert!(inj.is_drained());
    }
}
