//! Deterministic failure injection for fault-tolerance testing.
//!
//! Spark's headline property — and the one ArrayRDD inherits — is that lost
//! work is recomputed from lineage. The injector lets tests kill specific
//! task attempts or whole executors
//! ([`FailureInjector::kill_executor_after`] arms a kill that fires after
//! an executor finishes its Nth task, taking that task's attempt and every
//! block of the dead incarnation with it); dropping individual cached
//! blocks is done directly through [`crate::cache::BlockManager::evict`].
//!
//! For the health-monitoring layer there are three further injections that
//! model *silent* failure modes — the kind the driver must detect on its
//! own rather than be handed an error for:
//! [`FailureInjector::pause_heartbeats`] makes an executor go dark (its
//! stamps are suppressed until resumed or until a kill reseats the slot),
//! [`FailureInjector::stall_progress`] makes a task attempt spin while
//! still heartbeating (alive but stuck, the no-progress watchdog's prey),
//! and [`FailureInjector::flaky_executor`] makes every task that lands on
//! an executor fail with a seeded probability until it is healed — the
//! workload the quarantine monitor exists for.

use crate::health::{splitmix64, HealthBoard};
use crate::sync::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifies a schedulable task: the RDD whose partition the task produces
/// (for result stages) or the shuffle map side's parent RDD (for shuffle
/// stages), plus the partition index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskSite {
    /// RDD whose partition the task produces.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

/// Injects failures into the first N attempts of selected tasks, or into
/// the next N task attempts regardless of site.
#[derive(Default)]
pub struct FailureInjector {
    /// Remaining number of failures to inject per site.
    remaining: Mutex<HashMap<TaskSite, usize>>,
    /// Remaining site-independent failures.
    any: std::sync::atomic::AtomicUsize,
    /// Per-executor queue of armed kills: each entry is a countdown of
    /// tasks until that executor (incarnation) is killed; the next
    /// countdown starts once the previous kill fired.
    kill_after: Mutex<HashMap<usize, VecDeque<usize>>>,
    /// Remaining number of wedges to inject per site (see
    /// [`FailureInjector::wedge_task`]).
    wedged: Mutex<HashMap<TaskSite, usize>>,
    /// Remaining number of progress stalls to inject per site (see
    /// [`FailureInjector::stall_progress`]).
    stalled: Mutex<HashMap<TaskSite, usize>>,
    /// Per-executor seeded failure rate (see
    /// [`FailureInjector::flaky_executor`]): rate, seed, and a draw
    /// counter so successive tasks see independent deterministic draws.
    flaky: Mutex<HashMap<usize, FlakySlot>>,
    /// Health board of the attached pool; lets heartbeat injections flip
    /// pause flags that the executor-side stamps observe.
    health: Mutex<Option<Arc<HealthBoard>>>,
}

/// Seeded per-executor failure state for [`FailureInjector::flaky_executor`].
struct FlakySlot {
    rate: f64,
    seed: u64,
    draws: u64,
}

impl FailureInjector {
    /// Makes the next `times` attempts of the task computing `partition` of
    /// `rdd_id` fail with [`crate::TaskError::Injected`].
    ///
    /// Arming the same site again *accumulates*: two `fail_task(r, p, 2)`
    /// calls kill four attempts, not two (a second arm used to silently
    /// overwrite the first).
    ///
    /// The site only matches tasks *scheduled* for that RDD: result-stage
    /// tasks of an action's target RDD, or map tasks of a shuffle's
    /// immediate parent. Narrow ancestors recomputed inside a task are not
    /// separate sites — use [`FailureInjector::fail_next_tasks`] to kill
    /// tasks without knowing the plan.
    pub fn fail_task(&self, rdd_id: usize, partition: usize, times: usize) {
        let mut map = self.remaining.lock();
        let slot = map.entry(TaskSite { rdd_id, partition }).or_insert(0);
        *slot = slot.saturating_add(times);
        if *slot == 0 {
            map.remove(&TaskSite { rdd_id, partition });
        }
    }

    /// Arms a kill of `executor` that fires right after it finishes its
    /// `tasks`-th scheduled task from now (so `tasks = 1` kills it after
    /// the very next task it runs). The kill goes through
    /// `SpangleContext::kill_executor`: the finishing task's attempt is
    /// lost with the executor ([`crate::TaskError::ExecutorLost`]), the
    /// dead incarnation's shuffle blocks and cached partitions are
    /// discarded, and a replacement is seated in the same slot. Each call
    /// arms one more kill: countdowns queue up, so arming `(e, 1)` three
    /// times kills three successive incarnations of slot `e`, one task
    /// each.
    pub fn kill_executor_after(&self, executor: usize, tasks: usize) {
        assert!(tasks > 0, "a kill needs at least one task to fire after");
        self.kill_after
            .lock()
            .entry(executor)
            .or_default()
            .push_back(tasks);
    }

    /// Counts one finished scheduled task on `executor`; `true` when an
    /// armed kill just hit zero and the caller must kill the executor.
    pub(crate) fn take_executor_kill(&self, executor: usize) -> bool {
        let mut map = self.kill_after.lock();
        let Some(queue) = map.get_mut(&executor) else {
            return false;
        };
        let front = queue
            .front_mut()
            .expect("armed kill queues are never left empty");
        *front -= 1;
        if *front > 0 {
            return false;
        }
        queue.pop_front();
        if queue.is_empty() {
            map.remove(&executor);
        }
        true
    }

    /// Wedges the next `times` attempts of the task computing `partition`
    /// of `rdd_id`: instead of running its body, a wedged attempt spins at
    /// a cancellation point until cooperative cancellation interrupts it —
    /// the deterministic straggler for speculation and deadline-preemption
    /// tests. Each matching attempt consumes one wedge, so with `times =
    /// 1` the speculative duplicate (or a retry) of the same task runs
    /// clean while the original hangs.
    pub fn wedge_task(&self, rdd_id: usize, partition: usize, times: usize) {
        if times == 0 {
            return;
        }
        let mut map = self.wedged.lock();
        let slot = map.entry(TaskSite { rdd_id, partition }).or_insert(0);
        *slot = slot.saturating_add(times);
    }

    /// Consumes one armed wedge for the site, if any remain.
    pub(crate) fn take_wedge(&self, site: TaskSite) -> bool {
        let mut map = self.wedged.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// Connects this injector to the pool's health board so heartbeat
    /// injections can reach executor-side state. Called once at context
    /// construction; injectors used standalone (unit tests) simply have no
    /// board and treat heartbeat injections as no-ops.
    pub(crate) fn attach_health(&self, board: Arc<HealthBoard>) {
        *self.health.lock() = Some(board);
    }

    /// Makes `executor` go dark: its heartbeat and progress stamps are
    /// suppressed until [`FailureInjector::resume_heartbeats`] — or until
    /// the slot is reseated by a kill, since a replacement incarnation
    /// must not inherit its predecessor's silence. This is the "silently
    /// hung process" failure mode: the driver gets no error event and must
    /// notice the missing heartbeats on its own.
    pub fn pause_heartbeats(&self, executor: usize) {
        if let Some(board) = self.health.lock().as_ref() {
            board.set_paused(executor, true);
        }
    }

    /// Lets a paused executor stamp heartbeats again.
    pub fn resume_heartbeats(&self, executor: usize) {
        if let Some(board) = self.health.lock().as_ref() {
            board.set_paused(executor, false);
        }
    }

    /// Makes every task attempt that *runs on* `executor` fail with
    /// probability `rate`, drawn deterministically from `seed` — one draw
    /// per attempt, in arrival order. Unlike the one-shot injections this
    /// is *continuous*: it stays armed until
    /// [`FailureInjector::heal_executor`], which is how a test models a
    /// bad host (failing disk, thermal throttling) that the quarantine
    /// monitor must bench rather than wait out.
    pub fn flaky_executor(&self, executor: usize, rate: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate must be within [0, 1]"
        );
        self.flaky.lock().insert(
            executor,
            FlakySlot {
                rate,
                seed,
                draws: 0,
            },
        );
    }

    /// Clears a [`FailureInjector::flaky_executor`] arm; tasks landing on
    /// the executor run clean again (its quarantine probation canary can
    /// now succeed).
    pub fn heal_executor(&self, executor: usize) {
        self.flaky.lock().remove(&executor);
    }

    /// One seeded draw against `executor`'s flaky rate, if armed. `true`
    /// means this attempt must fail with [`crate::TaskError::Injected`].
    pub(crate) fn should_fail_on(&self, executor: usize) -> bool {
        let mut map = self.flaky.lock();
        let Some(slot) = map.get_mut(&executor) else {
            return false;
        };
        let draw = splitmix64(slot.seed.wrapping_add(slot.draws));
        slot.draws += 1;
        // Map the top 53 bits to [0, 1) — the standard uniform construction.
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        unit < slot.rate
    }

    /// Makes the next `times` attempts of the task computing `partition`
    /// of `rdd_id` *stall*: the attempt spins at a cancellation point
    /// while stamping heartbeats but never ticking progress — alive by
    /// every liveness signal, yet stuck. This is the failure mode the
    /// no-progress watchdog exists for: missed-heartbeat detection must
    /// NOT fire (the executor is demonstrably alive), and the wedge-based
    /// speculation trigger only sees it once the runtime crosses the
    /// straggler threshold.
    pub fn stall_progress(&self, rdd_id: usize, partition: usize, times: usize) {
        if times == 0 {
            return;
        }
        let mut map = self.stalled.lock();
        let slot = map.entry(TaskSite { rdd_id, partition }).or_insert(0);
        *slot = slot.saturating_add(times);
    }

    /// Consumes one armed stall for the site, if any remain.
    pub(crate) fn take_stall(&self, site: TaskSite) -> bool {
        let mut map = self.stalled.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// Makes the next `n` distinct tasks fail their first attempt, whatever
    /// they compute.
    ///
    /// Only first attempts are killed; a retry of an already-killed task is
    /// spared even while injections remain. Otherwise an instantly-failing
    /// retry could race ahead of its sibling tasks and burn through the
    /// whole budget (aborting the job), which is never what a recovery test
    /// armed with this method wants. Use [`FailureInjector::fail_task`] to
    /// kill retries of a specific task.
    pub fn fail_next_tasks(&self, n: usize) {
        self.any.fetch_add(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Consumes one injected failure for the site, if any remain.
    pub(crate) fn should_fail(&self, site: TaskSite, attempt: usize) -> bool {
        // Site-independent injections first; they only apply to first
        // attempts (see `fail_next_tasks`).
        if attempt == 0 {
            let mut current = self.any.load(std::sync::atomic::Ordering::SeqCst);
            while current > 0 {
                match self.any.compare_exchange(
                    current,
                    current - 1,
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                ) {
                    Ok(_) => return true,
                    Err(now) => current = now,
                }
            }
        }
        let mut map = self.remaining.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// True when no injections are pending — site-specific failures,
    /// site-independent failures, armed executor kills, stalls, flaky
    /// arms, and paused heartbeats alike (useful to assert a test
    /// consumed or healed everything it armed).
    pub fn is_drained(&self) -> bool {
        self.remaining.lock().is_empty()
            && self.any.load(std::sync::atomic::Ordering::SeqCst) == 0
            && self.kill_after.lock().is_empty()
            && self.wedged.lock().is_empty()
            && self.stalled.lock().is_empty()
            && self.flaky.lock().is_empty()
            && self
                .health
                .lock()
                .as_ref()
                .is_none_or(|board| !board.any_paused())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fails_exactly_n_times() {
        let inj = FailureInjector::default();
        inj.fail_task(7, 2, 2);
        let site = TaskSite {
            rdd_id: 7,
            partition: 2,
        };
        assert!(inj.should_fail(site, 0));
        assert!(inj.should_fail(site, 1));
        assert!(!inj.should_fail(site, 2));
        assert!(inj.is_drained());
    }

    #[test]
    fn unarmed_sites_never_fail() {
        let inj = FailureInjector::default();
        assert!(!inj.should_fail(
            TaskSite {
                rdd_id: 0,
                partition: 0
            },
            0
        ));
    }

    /// Regression: a second `fail_task` for the same site used to
    /// overwrite the first arm's remaining count; it must accumulate.
    #[test]
    fn rearming_a_site_accumulates_instead_of_overwriting() {
        let inj = FailureInjector::default();
        inj.fail_task(3, 1, 2);
        inj.fail_task(3, 1, 1);
        let site = TaskSite {
            rdd_id: 3,
            partition: 1,
        };
        for attempt in 0..3 {
            assert!(inj.should_fail(site, attempt), "attempt {attempt} armed");
        }
        assert!(!inj.should_fail(site, 3));
        assert!(inj.is_drained());
        // Arming zero times is a no-op, not a pending entry.
        inj.fail_task(4, 0, 0);
        assert!(inj.is_drained());
    }

    #[test]
    fn executor_kills_fire_in_armed_order_and_drain() {
        let inj = FailureInjector::default();
        inj.kill_executor_after(1, 2);
        inj.kill_executor_after(1, 1);
        assert!(!inj.is_drained());
        assert!(!inj.take_executor_kill(0), "unarmed executors never die");
        assert!(!inj.take_executor_kill(1), "first countdown at 1 of 2");
        assert!(inj.take_executor_kill(1), "first kill fires");
        assert!(
            inj.take_executor_kill(1),
            "second armed kill fires one task later"
        );
        assert!(!inj.take_executor_kill(1));
        assert!(inj.is_drained());
    }

    #[test]
    fn wedges_are_consumed_one_shot_per_site() {
        let inj = FailureInjector::default();
        inj.wedge_task(5, 0, 1);
        let site = TaskSite {
            rdd_id: 5,
            partition: 0,
        };
        assert!(!inj.is_drained());
        assert!(inj.take_wedge(site), "first attempt wedges");
        assert!(
            !inj.take_wedge(site),
            "the speculative duplicate runs clean"
        );
        assert!(inj.is_drained());
        inj.wedge_task(5, 0, 0);
        assert!(inj.is_drained(), "arming zero wedges is a no-op");
    }

    #[test]
    fn flaky_draws_are_seeded_deterministic_and_heal_drains() {
        let a = FailureInjector::default();
        let b = FailureInjector::default();
        a.flaky_executor(2, 0.3, 42);
        b.flaky_executor(2, 0.3, 42);
        let draws_a: Vec<bool> = (0..64).map(|_| a.should_fail_on(2)).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.should_fail_on(2)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same draw sequence");
        let fails = draws_a.iter().filter(|&&f| f).count();
        assert!(
            (8..=32).contains(&fails),
            "a 30% rate over 64 draws should fail roughly a third, got {fails}"
        );
        assert!(!a.should_fail_on(0), "unarmed executors never draw");
        assert!(!a.is_drained());
        a.heal_executor(2);
        assert!(a.is_drained());
        assert!(!a.should_fail_on(2), "healed executors run clean");
    }

    #[test]
    fn flaky_rate_extremes_always_and_never_fail() {
        let inj = FailureInjector::default();
        inj.flaky_executor(0, 1.0, 7);
        inj.flaky_executor(1, 0.0, 7);
        for _ in 0..16 {
            assert!(inj.should_fail_on(0), "rate 1.0 fails every draw");
            assert!(!inj.should_fail_on(1), "rate 0.0 never fails");
        }
    }

    #[test]
    fn stalls_are_consumed_one_shot_per_site() {
        let inj = FailureInjector::default();
        inj.stall_progress(9, 3, 1);
        let site = TaskSite {
            rdd_id: 9,
            partition: 3,
        };
        assert!(!inj.is_drained());
        assert!(inj.take_stall(site), "first attempt stalls");
        assert!(!inj.take_stall(site), "the duplicate attempt runs clean");
        assert!(inj.is_drained());
        inj.stall_progress(9, 3, 0);
        assert!(inj.is_drained(), "arming zero stalls is a no-op");
    }

    #[test]
    fn heartbeat_pause_reaches_the_attached_board() {
        let inj = FailureInjector::default();
        // Without a board the injection is a harmless no-op.
        inj.pause_heartbeats(0);
        assert!(inj.is_drained());

        let board = Arc::new(HealthBoard::new(2));
        inj.attach_health(Arc::clone(&board));
        inj.pause_heartbeats(1);
        assert!(board.any_paused());
        assert!(!inj.is_drained(), "a paused executor is a live injection");
        inj.resume_heartbeats(1);
        assert!(!board.any_paused());
        assert!(inj.is_drained());
    }

    #[test]
    fn site_independent_injections_spare_retries() {
        let inj = FailureInjector::default();
        inj.fail_next_tasks(2);
        let a = TaskSite {
            rdd_id: 1,
            partition: 0,
        };
        let b = TaskSite {
            rdd_id: 1,
            partition: 1,
        };
        assert!(inj.should_fail(a, 0));
        // The retry of `a` must not consume the second injection...
        assert!(!inj.should_fail(a, 1));
        // ...which is left for the first attempt of a different task.
        assert!(inj.should_fail(b, 0));
        assert!(inj.is_drained());
    }
}
