//! Deterministic failure injection for fault-tolerance testing.
//!
//! Spark's headline property — and the one ArrayRDD inherits — is that lost
//! work is recomputed from lineage. The injector lets tests kill specific
//! task attempts; dropping cached blocks is done directly through
//! [`crate::cache::BlockManager::evict`].

use crate::sync::Mutex;
use std::collections::HashMap;

/// Identifies a schedulable task: the RDD whose partition the task produces
/// (for result stages) or the shuffle map side's parent RDD (for shuffle
/// stages), plus the partition index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskSite {
    /// RDD whose partition the task produces.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

/// Injects failures into the first N attempts of selected tasks, or into
/// the next N task attempts regardless of site.
#[derive(Default)]
pub struct FailureInjector {
    /// Remaining number of failures to inject per site.
    remaining: Mutex<HashMap<TaskSite, usize>>,
    /// Remaining site-independent failures.
    any: std::sync::atomic::AtomicUsize,
}

impl FailureInjector {
    /// Makes the next `times` attempts of the task computing `partition` of
    /// `rdd_id` fail with [`crate::TaskError::Injected`].
    ///
    /// The site only matches tasks *scheduled* for that RDD: result-stage
    /// tasks of an action's target RDD, or map tasks of a shuffle's
    /// immediate parent. Narrow ancestors recomputed inside a task are not
    /// separate sites — use [`FailureInjector::fail_next_tasks`] to kill
    /// tasks without knowing the plan.
    pub fn fail_task(&self, rdd_id: usize, partition: usize, times: usize) {
        self.remaining
            .lock()
            .insert(TaskSite { rdd_id, partition }, times);
    }

    /// Makes the next `n` distinct tasks fail their first attempt, whatever
    /// they compute.
    ///
    /// Only first attempts are killed; a retry of an already-killed task is
    /// spared even while injections remain. Otherwise an instantly-failing
    /// retry could race ahead of its sibling tasks and burn through the
    /// whole budget (aborting the job), which is never what a recovery test
    /// armed with this method wants. Use [`FailureInjector::fail_task`] to
    /// kill retries of a specific task.
    pub fn fail_next_tasks(&self, n: usize) {
        self.any.fetch_add(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Consumes one injected failure for the site, if any remain.
    pub(crate) fn should_fail(&self, site: TaskSite, attempt: usize) -> bool {
        // Site-independent injections first; they only apply to first
        // attempts (see `fail_next_tasks`).
        if attempt == 0 {
            let mut current = self.any.load(std::sync::atomic::Ordering::SeqCst);
            while current > 0 {
                match self.any.compare_exchange(
                    current,
                    current - 1,
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                ) {
                    Ok(_) => return true,
                    Err(now) => current = now,
                }
            }
        }
        let mut map = self.remaining.lock();
        match map.get_mut(&site) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&site);
                }
                true
            }
            _ => false,
        }
    }

    /// True when no injections are pending (useful to assert a test
    /// consumed everything it armed).
    pub fn is_drained(&self) -> bool {
        self.remaining.lock().is_empty() && self.any.load(std::sync::atomic::Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fails_exactly_n_times() {
        let inj = FailureInjector::default();
        inj.fail_task(7, 2, 2);
        let site = TaskSite {
            rdd_id: 7,
            partition: 2,
        };
        assert!(inj.should_fail(site, 0));
        assert!(inj.should_fail(site, 1));
        assert!(!inj.should_fail(site, 2));
        assert!(inj.is_drained());
    }

    #[test]
    fn unarmed_sites_never_fail() {
        let inj = FailureInjector::default();
        assert!(!inj.should_fail(
            TaskSite {
                rdd_id: 0,
                partition: 0
            },
            0
        ));
    }

    #[test]
    fn site_independent_injections_spare_retries() {
        let inj = FailureInjector::default();
        inj.fail_next_tasks(2);
        let a = TaskSite {
            rdd_id: 1,
            partition: 0,
        };
        let b = TaskSite {
            rdd_id: 1,
            partition: 1,
        };
        assert!(inj.should_fail(a, 0));
        // The retry of `a` must not consume the second injection...
        assert!(!inj.should_fail(a, 1));
        // ...which is left for the first attempt of a different task.
        assert!(inj.should_fail(b, 0));
        assert!(inj.is_drained());
    }
}
