//! Deep-size accounting for shuffle-volume metrics, and the spill codec.
//!
//! The runtime never serialises records on the hot path; instead every
//! record written to the shuffle service is charged its deep in-memory size.
//! This keeps the *relative* network-cost comparisons of the paper (dense
//! vs. sparse chunks, bitmask vs. COO, local join vs. shuffle join)
//! measurable without paying for a wire format.
//!
//! The one place a wire format *does* exist is the spill tier: when
//! resident cache + shuffle bytes cross the admission watermark, cold
//! blocks are written to disk and rehydrated on demand. That codec lives
//! here too, as optional methods on [`MemSize`] — hand-rolled
//! little-endian framing, no external serialisation crate, and strictly
//! opt-in: a type that does not override [`MemSize::spillable`] simply
//! stays memory-resident forever.

use std::sync::Arc;

/// Deep in-memory size of a value in bytes.
///
/// Types may additionally opt into the *spill codec* by overriding
/// [`MemSize::spillable`], [`MemSize::spill_encode`] and
/// [`MemSize::spill_decode`]; blocks of such types can be demoted to the
/// on-disk spill tier under memory pressure. The codec contract is:
/// `spill_decode(spill_encode(v)) == v` bit-identically (floats round-trip
/// through their raw bits, so NaN payloads survive).
pub trait MemSize {
    /// Total bytes owned by `self`, including heap allocations but not
    /// double-counting shared (`Arc`) payloads.
    fn mem_size(&self) -> usize;

    /// Whether this type carries a spill codec. Blocks of non-spillable
    /// types are never demoted to disk — they just stay resident.
    #[inline]
    fn spillable() -> bool
    where
        Self: Sized,
    {
        false
    }

    /// Appends a self-delimiting encoding of `self` to `out`. Only called
    /// when [`MemSize::spillable`] is `true`; the default panics so a type
    /// cannot accidentally claim spillability without a codec.
    fn spill_encode(&self, _out: &mut Vec<u8>) {
        unreachable!("spill_encode called on a type without a spill codec")
    }

    /// Decodes one value previously written by [`MemSize::spill_encode`],
    /// advancing the cursor past it. Returns `None` on truncated or
    /// corrupt input (the caller treats the block as lost).
    fn spill_decode(_input: &mut SpillCursor<'_>) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// A forward-only cursor over a spill-encoded byte buffer.
pub struct SpillCursor<'a> {
    buf: &'a [u8],
}

impl<'a> SpillCursor<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SpillCursor { buf }
    }

    /// Takes the next `n` bytes, or `None` when fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.buf.len() {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `u64` length prefix written by [`put_len`], refusing
    /// lengths that cannot possibly fit in the remaining input (each
    /// element costs at least one byte — this bounds pre-allocation on
    /// corrupt frames).
    pub fn len_prefix(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n <= self.buf.len()).then_some(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// The unconsumed remainder of the buffer, for interop with decoders
    /// that work on slices; pair with [`SpillCursor::skip`].
    pub fn rest(&self) -> &'a [u8] {
        self.buf
    }

    /// Discards the next `n` bytes (after an external decoder consumed
    /// them from [`SpillCursor::rest`]).
    pub fn skip(&mut self, n: usize) -> Option<()> {
        self.take(n).map(|_| ())
    }
}

/// Writes a collection length as a little-endian `u64` prefix.
pub fn put_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u64).to_le_bytes());
}

/// Fixed-width numeric primitives: `mem_size` is `size_of`, the spill
/// codec is the little-endian byte representation (bit-identical for
/// floats, including NaN payloads).
macro_rules! memsize_numeric {
    ($($t:ty),* $(,)?) => {
        $(impl MemSize for $t {
            #[inline]
            fn mem_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            #[inline]
            fn spillable() -> bool {
                true
            }
            #[inline]
            fn spill_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
                let raw = input.take(std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().unwrap()))
            }
        })*
    };
}

memsize_numeric!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

/// Pointer-width integers are encoded as 64-bit so a spill file's framing
/// does not depend on the platform word size.
macro_rules! memsize_word {
    ($($t:ty => $wide:ty),* $(,)?) => {
        $(impl MemSize for $t {
            #[inline]
            fn mem_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            #[inline]
            fn spillable() -> bool {
                true
            }
            #[inline]
            fn spill_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as $wide).to_le_bytes());
            }
            #[inline]
            fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
                let raw = input.take(8)?;
                <$t>::try_from(<$wide>::from_le_bytes(raw.try_into().unwrap())).ok()
            }
        })*
    };
}

memsize_word!(usize => u64, isize => i64);

impl MemSize for bool {
    #[inline]
    fn mem_size(&self) -> usize {
        1
    }
    fn spillable() -> bool {
        true
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        match input.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl MemSize for char {
    #[inline]
    fn mem_size(&self) -> usize {
        std::mem::size_of::<char>()
    }
    fn spillable() -> bool {
        true
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        char::from_u32(u32::from_le_bytes(input.take(4)?.try_into().unwrap()))
    }
}

impl MemSize for () {
    #[inline]
    fn mem_size(&self) -> usize {
        0
    }
    fn spillable() -> bool {
        true
    }
    fn spill_encode(&self, _out: &mut Vec<u8>) {}
    fn spill_decode(_input: &mut SpillCursor<'_>) -> Option<Self> {
        Some(())
    }
}

impl MemSize for &'static str {
    // Not spillable: a decoded value could not be given 'static lifetime.
    fn mem_size(&self) -> usize {
        std::mem::size_of::<&str>() + self.len()
    }
}

impl MemSize for String {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
    fn spillable() -> bool {
        true
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        let n = input.len_prefix()?;
        String::from_utf8(input.take(n)?.to_vec()).ok()
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
    fn spillable() -> bool {
        T::spillable()
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for v in self {
            v.spill_encode(out);
        }
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        let n = input.len_prefix()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::spill_decode(input)?);
        }
        Some(out)
    }
}

impl<T: MemSize> MemSize for Box<[T]> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Box<[T]>>() + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
    fn spillable() -> bool {
        T::spillable()
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for v in self.iter() {
            v.spill_encode(out);
        }
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        Vec::<T>::spill_decode(input).map(Vec::into_boxed_slice)
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Option<T>>() + self.as_ref().map_or(0, |v| v.mem_size())
    }
    fn spillable() -> bool {
        T::spillable()
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.spill_encode(out);
            }
        }
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        match input.u8()? {
            0 => Some(None),
            1 => T::spill_decode(input).map(Some),
            _ => None,
        }
    }
}

impl<T: MemSize> MemSize for Arc<T> {
    /// Shared payloads are charged in full: when an `Arc` crosses the
    /// shuffle it would have to be serialised in a real cluster. The spill
    /// codec likewise encodes the pointee; rehydration allocates a fresh
    /// (unshared) one.
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Arc<T>>() + (**self).mem_size()
    }
    fn spillable() -> bool {
        T::spillable()
    }
    fn spill_encode(&self, out: &mut Vec<u8>) {
        (**self).spill_encode(out);
    }
    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        T::spill_decode(input).map(Arc::new)
    }
}

macro_rules! memsize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: MemSize),+> MemSize for ($($name,)+) {
            fn mem_size(&self) -> usize {
                0 $(+ self.$idx.mem_size())+
            }
            fn spillable() -> bool {
                true $(&& $name::spillable())+
            }
            fn spill_encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.spill_encode(out);)+
            }
            fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
                Some(($($name::spill_decode(input)?,)+))
            }
        }
    };
}

memsize_tuple!(A: 0);
memsize_tuple!(A: 0, B: 1);
memsize_tuple!(A: 0, B: 1, C: 2);
memsize_tuple!(A: 0, B: 1, C: 2, D: 3);
memsize_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_size() {
        assert_eq!(1u8.mem_size(), 1);
        assert_eq!(1u64.mem_size(), 8);
        assert_eq!(1.0f64.mem_size(), 8);
        assert_eq!(true.mem_size(), 1);
        assert_eq!(().mem_size(), 0);
    }

    #[test]
    fn containers_include_heap_contents() {
        let v = vec![0u64; 10];
        assert_eq!(v.mem_size(), std::mem::size_of::<Vec<u64>>() + 80);
        let s = String::from("hello");
        assert_eq!(s.mem_size(), std::mem::size_of::<String>() + 5);
        let nested = vec![vec![1u32, 2], vec![3u32]];
        assert!(nested.mem_size() > 12);
    }

    #[test]
    fn tuples_sum_their_fields() {
        assert_eq!((1u64, 2u64).mem_size(), 16);
        assert_eq!((1u8, 1u8, 1u8).mem_size(), 3);
    }

    #[test]
    fn option_charges_payload_when_present() {
        let none: Option<Vec<u64>> = None;
        let some: Option<Vec<u64>> = Some(vec![0; 4]);
        assert!(some.mem_size() > none.mem_size() + 31);
    }

    #[test]
    fn arc_charges_pointee() {
        let a = Arc::new(vec![0u64; 8]);
        assert!(a.mem_size() >= 64);
    }

    /// Encode-then-decode helper asserting the whole buffer is consumed.
    fn roundtrip<T: MemSize + PartialEq + std::fmt::Debug>(v: &T) {
        assert!(T::spillable());
        let mut buf = Vec::new();
        v.spill_encode(&mut buf);
        let mut cur = SpillCursor::new(&buf);
        let back = T::spill_decode(&mut cur).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(cur.remaining(), 0, "codec must be self-delimiting");
    }

    #[test]
    fn spill_codec_roundtrips_primitives() {
        roundtrip(&42u8);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&-17i64);
        roundtrip(&3.5f32);
        roundtrip(&f64::MIN_POSITIVE);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&'λ');
        roundtrip(&());
    }

    #[test]
    fn spill_codec_preserves_float_bits() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234); // NaN with payload
        let mut buf = Vec::new();
        weird.spill_encode(&mut buf);
        let back = f64::spill_decode(&mut SpillCursor::new(&buf)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn spill_codec_roundtrips_containers() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<f64>::new());
        roundtrip(&String::from("spill me"));
        roundtrip(&Some(vec![(1u32, 2.0f64), (3, 4.0)]));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![7u8; 3].into_boxed_slice());
        roundtrip(&(1u64, (2u32, vec![3.0f64]), String::from("k")));
        roundtrip(&Arc::new(vec![9u16, 8, 7]));
    }

    #[test]
    fn unspillable_types_stay_unspillable() {
        assert!(!<&'static str as MemSize>::spillable());
        assert!(!Vec::<&'static str>::spillable());
        assert!(!<(u64, &'static str)>::spillable());
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].spill_encode(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(Vec::<u64>::spill_decode(&mut SpillCursor::new(&buf)).is_none());
        // A length prefix promising more than the buffer holds is refused
        // before any allocation.
        let lie = u64::MAX.to_le_bytes().to_vec();
        assert!(Vec::<u8>::spill_decode(&mut SpillCursor::new(&lie)).is_none());
    }
}
