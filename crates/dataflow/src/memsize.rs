//! Deep-size accounting for shuffle-volume metrics.
//!
//! The runtime never serialises records; instead every record written to the
//! shuffle service is charged its deep in-memory size. This keeps the
//! *relative* network-cost comparisons of the paper (dense vs. sparse
//! chunks, bitmask vs. COO, local join vs. shuffle join) measurable without
//! paying for a wire format.

use std::sync::Arc;

/// Deep in-memory size of a value in bytes.
pub trait MemSize {
    /// Total bytes owned by `self`, including heap allocations but not
    /// double-counting shared (`Arc`) payloads.
    fn mem_size(&self) -> usize;
}

macro_rules! memsize_primitive {
    ($($t:ty),* $(,)?) => {
        $(impl MemSize for $t {
            #[inline]
            fn mem_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

memsize_primitive!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl MemSize for &'static str {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<&str>() + self.len()
    }
}

impl MemSize for String {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
}

impl<T: MemSize> MemSize for Box<[T]> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Box<[T]>>() + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Option<T>>() + self.as_ref().map_or(0, |v| v.mem_size())
    }
}

impl<T: MemSize> MemSize for Arc<T> {
    /// Shared payloads are charged in full: when an `Arc` crosses the
    /// shuffle it would have to be serialised in a real cluster.
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Arc<T>>() + (**self).mem_size()
    }
}

macro_rules! memsize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: MemSize),+> MemSize for ($($name,)+) {
            fn mem_size(&self) -> usize {
                0 $(+ self.$idx.mem_size())+
            }
        }
    };
}

memsize_tuple!(A: 0);
memsize_tuple!(A: 0, B: 1);
memsize_tuple!(A: 0, B: 1, C: 2);
memsize_tuple!(A: 0, B: 1, C: 2, D: 3);
memsize_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_size() {
        assert_eq!(1u8.mem_size(), 1);
        assert_eq!(1u64.mem_size(), 8);
        assert_eq!(1.0f64.mem_size(), 8);
        assert_eq!(true.mem_size(), 1);
        assert_eq!(().mem_size(), 0);
    }

    #[test]
    fn containers_include_heap_contents() {
        let v = vec![0u64; 10];
        assert_eq!(v.mem_size(), std::mem::size_of::<Vec<u64>>() + 80);
        let s = String::from("hello");
        assert_eq!(s.mem_size(), std::mem::size_of::<String>() + 5);
        let nested = vec![vec![1u32, 2], vec![3u32]];
        assert!(nested.mem_size() > 12);
    }

    #[test]
    fn tuples_sum_their_fields() {
        assert_eq!((1u64, 2u64).mem_size(), 16);
        assert_eq!((1u8, 1u8, 1u8).mem_size(), 3);
    }

    #[test]
    fn option_charges_payload_when_present() {
        let none: Option<Vec<u64>> = None;
        let some: Option<Vec<u64>> = Some(vec![0; 4]);
        assert!(some.mem_size() > none.mem_size() + 31);
    }

    #[test]
    fn arc_charges_pointee() {
        let a = Arc::new(vec![0u64; 8]);
        assert!(a.mem_size() >= 64);
    }
}
