//! The in-memory shuffle service.
//!
//! A shuffle moves every record of a pair RDD from the executor that
//! computed it (the *map* side) to the executor that owns its key's reduce
//! partition. This service plays the role of Spark's shuffle
//! write/fetch path: map tasks deposit per-reduce-partition buckets, reduce
//! tasks fetch them, and every byte that logically crosses the network is
//! charged to the metrics.
//!
//! Besides block storage, the service is the arbiter of *map-stage
//! ownership*. Concurrent jobs (or sibling stages of one job) may share a
//! shuffle dependency; `is_completed`-then-run was a check-then-act race
//! that could run the same map stage twice. Schedulers now
//! [`ShuffleService::try_claim`] a shuffle: exactly one caller becomes the
//! owner and runs the stage, everyone else either reuses the completed
//! output or registers a completion callback via
//! [`ShuffleService::subscribe`]. Subscription is checked under the same
//! lock as the stage state, so a callback can never be lost to a
//! check-then-subscribe race — it fires immediately when the stage is
//! already resolved, and exactly once from
//! [`ShuffleService::mark_completed`] / [`ShuffleService::abandon`]
//! otherwise. No thread ever parks inside the service on behalf of a
//! scheduler: stage readiness is event-driven end to end.
//!
//! The service is also executor-loss aware. Every block is attributed to
//! the executor incarnation ([`BlockOrigin`]) that produced it, and every
//! map task registers its output — even an all-empty one — in a
//! per-shuffle registry ([`ShuffleService::register_map_output`]). When an
//! executor dies, [`ShuffleService::discard_executor`] drops its blocks
//! and registrations; a reduce task that later fetches a block whose map
//! output is no longer registered panics with a typed
//! [`FetchFailedError`] instead of silently reading an empty bucket. The
//! scheduler catches that panic, claims the *recovery* of the shuffle
//! ([`ShuffleService::claim_recovery`] — the re-run analogue of
//! [`ShuffleService::try_claim`]) and resubmits only the missing map
//! partitions from lineage.
//!
//! # Memory tiers
//!
//! Blocks live in one of two tiers. They are deposited *resident* (the
//! records stay on the heap behind an `Arc`, fetched zero-copy) and may be
//! demoted to *spilled* (encoded with the [`crate::MemSize`] spill codec
//! and written to a framed, checksummed spill file, heap bytes freed)
//! when resident cache + shuffle memory crosses the admission watermark —
//! see [`crate::SpangleContext`]'s `enforce_memory_watermark`. A fetch that
//! touches a spilled block *rehydrates* it: the file is read back,
//! verified, decoded, reinstated as resident, and the file deleted. Spill
//! victims are picked coldest-first by a touch clock that every fetch
//! bumps. Blocks whose element type opted out of the spill codec simply
//! stay resident — spilling is an optimization, never a correctness
//! requirement.

use crate::executor::BlockOrigin;
use crate::metrics::MetricField;
use crate::spill::{SpillCodec, SpillStore};
use crate::sync::{Mutex, RwLock, Subscribers};
use crate::{Data, SpangleContext};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Key of one shuffle block: output of map partition `map_id` destined for
/// reduce partition `reduce_id` of shuffle `shuffle_id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// The shuffle this block belongs to.
    pub shuffle_id: usize,
    /// Map-side partition that produced the block.
    pub map_id: usize,
    /// Reduce-side partition the block is destined for.
    pub reduce_id: usize,
}

type BlockPayload = Arc<dyn Any + Send + Sync>;

/// Where one block's records currently live.
enum StoredBlock {
    /// On the heap; fetches clone the `Arc`, not the records.
    Resident(BlockPayload),
    /// Encoded on disk in the service's spill store; `disk_len` is the
    /// framed file size (kept so removal can release the accounted bytes).
    Spilled { file: u64, disk_len: usize },
}

/// One deposited block with its tier, accounting, and spill identity.
struct ShuffleEntry {
    data: StoredBlock,
    /// Deep size of the records (the logical, in-memory size — charged as
    /// shuffle volume and counted in `resident_bytes` while resident).
    bytes: usize,
    origin: BlockOrigin,
    /// Captured at deposit, where the element type is still concrete.
    /// `None` means the type opted out of spilling; the block is pinned
    /// resident.
    codec: Option<SpillCodec>,
    /// Last-fetch tick from the service clock; spilling evicts the block
    /// with the smallest value first.
    touch: AtomicU64,
}

/// A one-shot completion callback: `true` means the map stage completed,
/// `false` that its owner abandoned it (or the shuffle was removed).
pub type ShuffleCallback = Box<dyn FnOnce(bool) + Send>;

/// Map-stage progress of one shuffle.
enum MapStageState {
    /// Some job claimed the map stage and is running it; `waiters` fire
    /// when it resolves.
    InFlight { waiters: Subscribers<bool> },
    /// The map stage ran to completion with this many map partitions.
    Completed { num_maps: usize },
}

/// Panic payload raised by [`ShuffleService::fetch_block`] when the block's
/// map output was lost after the map stage completed (the executor that
/// produced it died). The scheduler downcasts this out of the task panic
/// and turns it into [`crate::TaskError::FetchFailed`], which triggers
/// lineage-based resubmission of exactly the missing map partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchFailedError {
    /// Shuffle whose map output is gone.
    pub shuffle_id: usize,
    /// Map partition whose output is missing.
    pub map_id: usize,
}

/// Outcome of [`ShuffleService::claim_recovery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryClaim {
    /// The caller owns the recovery and must re-run exactly the `missing`
    /// map partitions, then [`ShuffleService::mark_completed`] (or
    /// [`ShuffleService::abandon`]) the stage again. Surviving partitions'
    /// blocks and registrations are kept.
    Owner {
        /// Map partitions whose output must be recomputed, ascending.
        missing: Vec<usize>,
    },
    /// Another scheduler is already re-running the map stage; register a
    /// callback with [`ShuffleService::subscribe`].
    InFlight,
    /// Every map partition is registered again (someone else already
    /// recovered the shuffle); the caller can re-fetch immediately.
    Recovered,
}

/// Outcome of [`ShuffleService::try_claim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShuffleClaim {
    /// The caller now owns the map stage and must run it, then call
    /// [`ShuffleService::mark_completed`] or [`ShuffleService::abandon`].
    Owner,
    /// The map stage already ran; its output can be read immediately.
    Completed,
    /// Another scheduler is running the map stage right now; register a
    /// callback with [`ShuffleService::subscribe`] (or block on
    /// [`ShuffleService::wait_finished`]).
    InFlight,
}

/// Stores shuffle blocks between stages and tracks map-stage ownership.
#[derive(Default)]
pub struct ShuffleService {
    blocks: RwLock<HashMap<BlockId, ShuffleEntry>>,
    /// Per-shuffle map-stage state; absent means "never run, unclaimed".
    stages: Mutex<HashMap<usize, MapStageState>>,
    /// Per-shuffle registry of which executor incarnation produced each map
    /// partition's output. A map task registers here even when every bucket
    /// it produced was empty, so "block absent but map registered" means an
    /// empty bucket while "absent and unregistered" means the output was
    /// lost with its executor.
    outputs: Mutex<HashMap<usize, HashMap<usize, BlockOrigin>>>,
    /// Shuffles torn down by [`ShuffleService::remove_shuffle`] (lineage
    /// GC). A fetch against a tombstoned shuffle fails typed instead of
    /// reading an empty bucket: "never had stage state" (test-seeded) and
    /// "had state, then removed" are different answers. Ids are
    /// context-monotone and never reused, so the set only grows — one
    /// `usize` per GC'd shuffle over the context's life.
    removed: Mutex<HashSet<usize>>,
    /// Bytes of the `Resident` tier, maintained under the `blocks` write
    /// lock on every insert/remove/tier-flip so `resident_bytes` is an
    /// O(1) load instead of a full map walk per deposit.
    resident: AtomicUsize,
    /// Monotone fetch clock feeding each entry's `touch`.
    clock: AtomicU64,
    /// On-disk tier for spilled blocks.
    spill: SpillStore,
}

impl ShuffleService {
    /// Asserts the O(1) resident counter against the ground-truth walk.
    /// Called in debug builds by every mutating operation, *while still
    /// holding the blocks write lock* — the counter is only ever updated
    /// under that lock, so the comparison is exact, never racy.
    fn debug_check_resident(&self, blocks: &HashMap<BlockId, ShuffleEntry>) {
        debug_assert_eq!(
            self.resident.load(Ordering::Relaxed),
            blocks
                .values()
                .filter(|e| matches!(e.data, StoredBlock::Resident(_)))
                .map(|e| e.bytes)
                .sum::<usize>(),
            "shuffle resident-bytes counter drifted from the block map"
        );
    }

    /// Inserts a resident entry, keeping the resident counter and the spill
    /// store consistent when an existing entry (either tier) is replaced.
    fn install(
        &self,
        blocks: &mut HashMap<BlockId, ShuffleEntry>,
        id: BlockId,
        entry: ShuffleEntry,
    ) {
        if matches!(entry.data, StoredBlock::Resident(_)) {
            self.resident.fetch_add(entry.bytes, Ordering::Relaxed);
        }
        if let Some(old) = blocks.insert(id, entry) {
            self.release(&old);
        }
    }

    /// Releases one entry's accounting: resident bytes for the in-memory
    /// tier, the spill file for the disk tier. Caller holds the blocks
    /// write lock (or exclusive ownership of a just-removed entry).
    fn release(&self, entry: &ShuffleEntry) {
        match entry.data {
            StoredBlock::Resident(_) => {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
            StoredBlock::Spilled { file, disk_len } => self.spill.remove(file, disk_len),
        }
    }

    /// Deposits the bucket for one (map, reduce) pair. `bytes` is the deep
    /// size of the records, charged as shuffle write volume.
    ///
    /// A deposit from a dead executor incarnation (killed while the map
    /// task was running) is silently dropped — its blocks were already
    /// discarded and the task's attempt is being replayed elsewhere, so
    /// accepting the stale write would interleave two attempts' output.
    ///
    /// A deposit for a (shuffle, map) pair already registered by a
    /// *different live* incarnation is also refused: that map partition has
    /// a committed winner (see [`ShuffleService::commit_map_output`]'s
    /// first-write-wins rule), and a late speculative loser writing through
    /// this legacy path must not overwrite the winner's blocks. Deposits
    /// from the registered origin itself remain allowed (recovery re-seeds
    /// and put-then-register callers).
    pub fn put_block<T: Data>(
        &self,
        ctx: &SpangleContext,
        id: BlockId,
        records: Vec<T>,
        bytes: usize,
        origin: BlockOrigin,
    ) {
        if !ctx.inner.pool.origin_is_live(origin) {
            return;
        }
        if let Some(winner) = self
            .outputs
            .lock()
            .get(&id.shuffle_id)
            .and_then(|maps| maps.get(&id.map_id))
        {
            if *winner != origin && ctx.inner.pool.origin_is_live(*winner) {
                return;
            }
        }
        ctx.metrics()
            .add(MetricField::ShuffleWriteBytes, bytes as u64);
        ctx.metrics()
            .add(MetricField::ShuffleRecords, records.len() as u64);
        {
            let mut blocks = self.blocks.write();
            self.install(
                &mut blocks,
                id,
                ShuffleEntry {
                    data: StoredBlock::Resident(Arc::new(records)),
                    bytes,
                    origin,
                    codec: SpillCodec::of::<T>(),
                    touch: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                },
            );
            self.debug_check_resident(&blocks);
        }
        // Resident cache + shuffle memory is what admission control's high
        // watermark is evaluated against; give the spill tier a chance to
        // shed cold blocks first, then record the (post-spill) peak.
        ctx.enforce_memory_watermark();
        ctx.metrics().raise(
            MetricField::MemoryHighwaterBytes,
            (self.resident_bytes() + ctx.cached_bytes()) as u64,
        );
    }

    /// Records that map partition `map_id` of `shuffle_id` deposited all
    /// its (possibly empty) buckets. Every map task calls this once at the
    /// end, so [`ShuffleService::fetch_block`] can tell a legitimately
    /// empty bucket from one lost with its executor. Registrations from a
    /// dead incarnation are dropped like stale block deposits.
    pub fn register_map_output(
        &self,
        ctx: &SpangleContext,
        shuffle_id: usize,
        map_id: usize,
        origin: BlockOrigin,
    ) {
        if !ctx.inner.pool.origin_is_live(origin) {
            return;
        }
        self.outputs
            .lock()
            .entry(shuffle_id)
            .or_default()
            .insert(map_id, origin);
    }

    /// Atomically deposits *all* buckets of one map task and registers its
    /// output, first-write-wins. Under speculative execution two attempts
    /// of the same map partition race; whichever commits first installs
    /// its complete bucket set, and the loser's deposit is refused as a
    /// unit so two attempts' output can never interleave. Returns whether
    /// this attempt won.
    ///
    /// A commit loses when the (shuffle, map) pair is already registered
    /// by a live incarnation, or when the depositing incarnation itself is
    /// dead (killed mid-task — same rule as [`ShuffleService::put_block`]).
    /// Losing commits charge no shuffle-write volume.
    pub fn commit_map_output<T: Data>(
        &self,
        ctx: &SpangleContext,
        shuffle_id: usize,
        map_id: usize,
        buckets: Vec<(usize, Vec<T>, usize)>,
        origin: BlockOrigin,
    ) -> bool {
        if !ctx.inner.pool.origin_is_live(origin) {
            return false;
        }
        let mut outputs = self.outputs.lock();
        let maps = outputs.entry(shuffle_id).or_default();
        if let Some(existing) = maps.get(&map_id) {
            if ctx.inner.pool.origin_is_live(*existing) {
                return false;
            }
        }
        maps.insert(map_id, origin);
        let mut total_bytes = 0u64;
        let mut total_records = 0u64;
        {
            let mut blocks = self.blocks.write();
            for (reduce_id, records, bytes) in buckets {
                total_bytes += bytes as u64;
                total_records += records.len() as u64;
                self.install(
                    &mut blocks,
                    BlockId {
                        shuffle_id,
                        map_id,
                        reduce_id,
                    },
                    ShuffleEntry {
                        data: StoredBlock::Resident(Arc::new(records)),
                        bytes,
                        origin,
                        codec: SpillCodec::of::<T>(),
                        touch: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                    },
                );
            }
            self.debug_check_resident(&blocks);
        }
        drop(outputs);
        ctx.metrics()
            .add(MetricField::ShuffleWriteBytes, total_bytes);
        ctx.metrics()
            .add(MetricField::ShuffleRecords, total_records);
        ctx.enforce_memory_watermark();
        ctx.metrics().raise(
            MetricField::MemoryHighwaterBytes,
            (self.resident_bytes() + ctx.cached_bytes()) as u64,
        );
        true
    }

    /// Fetches one bucket, charging shuffle read volume. Returns a shared
    /// handle to the bucket's records — reduce tasks iterate the `Arc`
    /// without cloning the underlying vector. Returns an empty block when
    /// the map task produced nothing for this reduce partition. A spilled
    /// block is rehydrated (read back, verified, reinstated resident)
    /// transparently.
    ///
    /// # Panics
    ///
    /// Panics with a [`FetchFailedError`] payload when the block is absent
    /// *and* its map partition is not registered for a shuffle whose map
    /// stage ran — or whose state was torn down by
    /// [`ShuffleService::remove_shuffle`]: the output existed and was lost
    /// (executor death, lineage GC, or a corrupt spill file), so the
    /// caller must not treat it as empty. The scheduler converts this
    /// panic into [`crate::TaskError::FetchFailed`] and recovers.
    pub fn fetch_block<T: Data>(&self, ctx: &SpangleContext, id: BlockId) -> Arc<Vec<T>> {
        loop {
            // Fast path: resident block under the read lock. A spilled hit
            // captures the file identity and rehydrates outside all locks.
            let (file, disk_len, codec) = {
                let guard = self.blocks.read();
                let Some(entry) = guard.get(&id) else { break };
                match &entry.data {
                    StoredBlock::Resident(payload) => {
                        entry.touch.store(
                            self.clock.fetch_add(1, Ordering::Relaxed),
                            Ordering::Relaxed,
                        );
                        ctx.metrics()
                            .add(MetricField::ShuffleReadBytes, entry.bytes as u64);
                        return payload.clone().downcast::<Vec<T>>().expect(
                            "shuffle block type mismatch: reduce side fetched a different \
                             type than the map side wrote",
                        );
                    }
                    StoredBlock::Spilled { file, disk_len } => (
                        *file,
                        *disk_len,
                        entry.codec.expect("spilled block without a codec"),
                    ),
                }
            };
            let decoded = self
                .spill
                .read(file)
                .and_then(|payload| codec.decode(&payload));
            let mut blocks = self.blocks.write();
            let Some(entry) = blocks.get_mut(&id) else {
                break;
            };
            match entry.data {
                // Raced with another rehydrator (or a re-deposit): take the
                // read path again.
                StoredBlock::Resident(_) => continue,
                StoredBlock::Spilled { file: f, .. } if f != file => continue,
                StoredBlock::Spilled { .. } => {}
            }
            let Some(payload) = decoded else {
                // The spill file is torn or unreadable: the block is gone
                // for real. Drop the entry and its registration so this
                // surfaces exactly like executor loss — typed, recoverable
                // from lineage — instead of decoding garbage.
                let entry = blocks.remove(&id).expect("entry checked above");
                self.release(&entry);
                self.debug_check_resident(&blocks);
                drop(blocks);
                if let Some(maps) = self.outputs.lock().get_mut(&id.shuffle_id) {
                    maps.remove(&id.map_id);
                }
                std::panic::panic_any(FetchFailedError {
                    shuffle_id: id.shuffle_id,
                    map_id: id.map_id,
                });
            };
            entry.data = StoredBlock::Resident(payload.clone());
            entry.touch.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            let bytes = entry.bytes;
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            self.spill.remove(file, disk_len);
            self.debug_check_resident(&blocks);
            drop(blocks);
            ctx.metrics().add(MetricField::BlocksRehydrated, 1);
            ctx.metrics()
                .add(MetricField::ShuffleReadBytes, bytes as u64);
            // Rehydrating grew the resident tier; let the watermark demote
            // a colder block in exchange if memory is tight.
            ctx.enforce_memory_watermark();
            ctx.metrics().raise(
                MetricField::MemoryHighwaterBytes,
                (self.resident_bytes() + ctx.cached_bytes()) as u64,
            );
            return payload
                .downcast::<Vec<T>>()
                .expect("shuffle block type mismatch after rehydrate");
        }
        // Absent. Registered-but-absent is a genuinely empty bucket.
        let registered = self
            .outputs
            .lock()
            .get(&id.shuffle_id)
            .is_some_and(|maps| maps.contains_key(&id.map_id));
        if registered {
            return Arc::new(Vec::new());
        }
        // Unregistered: a tombstoned shuffle (lineage GC beat this fetch)
        // or one whose map stage ran fails typed; a shuffle that never had
        // stage state at all is a test-seeded block map — keep the
        // historical empty-fetch behavior for those.
        let removed = self.removed.lock().contains(&id.shuffle_id);
        if removed || self.stages.lock().contains_key(&id.shuffle_id) {
            std::panic::panic_any(FetchFailedError {
                shuffle_id: id.shuffle_id,
                map_id: id.map_id,
            });
        }
        Arc::new(Vec::new())
    }

    /// Demotes cold resident blocks to the disk tier until roughly `need`
    /// resident bytes are freed (or no spillable candidates remain).
    /// Victims are picked least-recently-fetched first. Returns the bytes
    /// actually freed. Blocks without a codec are skipped; an IO error
    /// stops the sweep (memory pressure is better than cascading disk
    /// failures).
    pub(crate) fn spill_up_to(&self, ctx: &SpangleContext, need: usize) -> usize {
        let mut freed = 0usize;
        let mut spilled_blocks = 0u64;
        let mut spilled_disk = 0u64;
        {
            let mut blocks = self.blocks.write();
            let mut candidates: Vec<(BlockId, u64)> = blocks
                .iter()
                .filter(|(_, e)| e.codec.is_some() && matches!(e.data, StoredBlock::Resident(_)))
                .map(|(id, e)| (*id, e.touch.load(Ordering::Relaxed)))
                .collect();
            candidates.sort_unstable_by_key(|&(_, touch)| touch);
            for (id, _) in candidates {
                if freed >= need {
                    break;
                }
                let entry = blocks
                    .get(&id)
                    .expect("candidate vanished under write lock");
                let StoredBlock::Resident(payload) = &entry.data else {
                    continue;
                };
                let codec = entry.codec.expect("candidates are filtered on codec");
                let encoded = codec.encode(payload.as_ref());
                let Ok((file, disk_len)) = self.spill.write(&encoded) else {
                    break;
                };
                let entry = blocks.get_mut(&id).expect("still under the write lock");
                entry.data = StoredBlock::Spilled { file, disk_len };
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                freed += entry.bytes;
                spilled_blocks += 1;
                spilled_disk += disk_len as u64;
            }
            self.debug_check_resident(&blocks);
        }
        if spilled_blocks > 0 {
            ctx.metrics()
                .add(MetricField::BlocksSpilled, spilled_blocks);
            ctx.metrics().add(MetricField::SpillBytes, spilled_disk);
            ctx.metrics().raise(
                MetricField::DiskResidentBytes,
                ctx.disk_resident_bytes() as u64,
            );
        }
        freed
    }

    /// Atomically claims the map stage of `shuffle_id`. At most one caller
    /// is ever told [`ShuffleClaim::Owner`] per run of the stage; the
    /// owner must finish with [`ShuffleService::mark_completed`] (success)
    /// or [`ShuffleService::abandon`] (job abort) so waiters wake up.
    pub fn try_claim(&self, shuffle_id: usize) -> ShuffleClaim {
        let mut stages = self.stages.lock();
        match stages.get(&shuffle_id) {
            Some(MapStageState::Completed { .. }) => ShuffleClaim::Completed,
            Some(MapStageState::InFlight { .. }) => ShuffleClaim::InFlight,
            None => {
                stages.insert(
                    shuffle_id,
                    MapStageState::InFlight {
                        waiters: Subscribers::new(),
                    },
                );
                ShuffleClaim::Owner
            }
        }
    }

    /// Registers a one-shot callback on the map stage of `shuffle_id`.
    ///
    /// The state check and registration happen under one lock, so a
    /// callback can never miss its notification: if the stage is already
    /// `Completed` the callback fires immediately with `true`; if it is
    /// unclaimed (never run, or abandoned) it fires immediately with
    /// `false` (the caller should [`ShuffleService::try_claim`]); if it is
    /// in flight, the callback fires exactly once when the owner
    /// [`ShuffleService::mark_completed`]s (`true`) or
    /// [`ShuffleService::abandon`]s (`false`) the stage.
    ///
    /// Callbacks run on whatever thread resolves the stage (an executor
    /// or another job's driver) and must not block; schedulers send an
    /// event into their own channel.
    pub fn subscribe(&self, shuffle_id: usize, callback: ShuffleCallback) {
        let mut stages = self.stages.lock();
        match stages.get_mut(&shuffle_id) {
            Some(MapStageState::InFlight { waiters }) => {
                waiters.push(callback);
            }
            Some(MapStageState::Completed { .. }) => {
                drop(stages);
                callback(true);
            }
            None => {
                drop(stages);
                callback(false);
            }
        }
    }

    /// Marks the map stage of `shuffle_id` complete with `num_maps` map
    /// partitions, firing any subscribed callbacks. Callable with or
    /// without a prior claim (tests seed completed shuffles directly).
    ///
    /// Validates the deposit against the map-output registry and returns
    /// the map partitions that never registered, ascending. Non-empty
    /// means some output is already gone — typically because the executor
    /// that ran those maps died after finishing them but before the stage
    /// closed. The first reduce task to touch a missing partition raises
    /// [`FetchFailedError`] and the scheduler recovers, so callers may
    /// ignore the list; tests that seed completions without deposits get
    /// the full range back.
    pub fn mark_completed(&self, shuffle_id: usize, num_maps: usize) -> Vec<usize> {
        let mut stages = self.stages.lock();
        let previous = stages.insert(shuffle_id, MapStageState::Completed { num_maps });
        let outputs = self.outputs.lock();
        let missing = match outputs.get(&shuffle_id) {
            Some(maps) => (0..num_maps).filter(|m| !maps.contains_key(m)).collect(),
            None => (0..num_maps).collect(),
        };
        drop(outputs);
        drop(stages);
        if let Some(MapStageState::InFlight { waiters }) = previous {
            waiters.fire(true);
        }
        missing
    }

    /// Releases an [`ShuffleClaim::Owner`] claim without completing the
    /// stage (the owning job aborted). Subscribed callbacks fire with
    /// `false` and their schedulers race to re-claim.
    ///
    /// Any partial map output the aborted attempt already deposited is
    /// dropped with the claim — both tiers: leaving it resident would leak
    /// `resident_bytes` (and spill files) until shuffle GC, and a
    /// re-claiming owner would interleave its fresh blocks with the
    /// aborted attempt's stale ones. The shuffle is *not* tombstoned: a
    /// re-claim runs the stage again from scratch, so later fetches are
    /// legitimate.
    pub fn abandon(&self, shuffle_id: usize) {
        let mut stages = self.stages.lock();
        let abandoned = match stages.get(&shuffle_id) {
            Some(MapStageState::InFlight { .. }) => stages.remove(&shuffle_id),
            _ => None,
        };
        drop(stages);
        if let Some(MapStageState::InFlight { waiters }) = abandoned {
            self.outputs.lock().remove(&shuffle_id);
            self.drop_blocks_of(shuffle_id);
            waiters.fire(false);
        }
    }

    /// Drops every block (either tier) of one shuffle, releasing resident
    /// bytes and spill files.
    fn drop_blocks_of(&self, shuffle_id: usize) {
        let mut blocks = self.blocks.write();
        blocks.retain(|id, entry| {
            let keep = id.shuffle_id != shuffle_id;
            if !keep {
                self.release(entry);
            }
            keep
        });
        self.debug_check_resident(&blocks);
    }

    /// Blocks until the map stage of `shuffle_id` is no longer in flight.
    /// Returns `true` when it completed, `false` when the owner abandoned
    /// it (the caller should [`ShuffleService::try_claim`] again).
    ///
    /// This is [`ShuffleService::subscribe`] plus a channel for callers
    /// that genuinely have nothing else to do; the scheduler itself never
    /// blocks here.
    pub fn wait_finished(&self, shuffle_id: usize) -> bool {
        let (tx, rx) = crate::sync::channel::unbounded();
        self.subscribe(
            shuffle_id,
            Box::new(move |completed| {
                let _ = tx.send(completed);
            }),
        );
        rx.recv().unwrap_or(false)
    }

    /// Whether the map stage of `shuffle_id` already ran.
    pub fn is_completed(&self, shuffle_id: usize) -> bool {
        matches!(
            self.stages.lock().get(&shuffle_id),
            Some(MapStageState::Completed { .. })
        )
    }

    /// Drops all blocks and completion state of one shuffle. Called when
    /// the owning dependency is garbage-collected so iterative jobs do not
    /// accumulate dead shuffle outputs. Any callbacks still subscribed
    /// (there should be none by GC time) fire with `false`.
    ///
    /// The shuffle id is tombstoned: a straggling reduce fetch arriving
    /// after GC raises [`FetchFailedError`] instead of silently reading an
    /// empty bucket (its data *existed* — it is gone, not empty).
    pub fn remove_shuffle(&self, shuffle_id: usize) {
        let removed = self.stages.lock().remove(&shuffle_id);
        let had_state = removed.is_some();
        if let Some(MapStageState::InFlight { waiters }) = removed {
            waiters.fire(false);
        }
        if had_state {
            self.removed.lock().insert(shuffle_id);
        }
        self.outputs.lock().remove(&shuffle_id);
        self.drop_blocks_of(shuffle_id);
    }

    /// Drops every block and map-output registration produced by the given
    /// executor (any incarnation), across all shuffles. Called when an
    /// executor is killed. Returns `(blocks_dropped, bytes_dropped)`,
    /// counting logical record bytes for blocks of both tiers — a spilled
    /// block of a dead incarnation is deleted from disk, never rehydrated:
    /// its producer's epoch is retired, so its data is as stale as a
    /// resident block's would be.
    ///
    /// Completion state is deliberately left alone: a shuffle stays
    /// `Completed` with holes, and the holes surface as
    /// [`FetchFailedError`] on the next fetch so recovery is driven by the
    /// jobs that actually need the data.
    pub fn discard_executor(&self, executor: usize) -> (usize, usize) {
        for maps in self.outputs.lock().values_mut() {
            maps.retain(|_, origin| !origin.lives_on(executor));
        }
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        let mut bytes_dropped = 0;
        blocks.retain(|_, entry| {
            let keep = !entry.origin.lives_on(executor);
            if !keep {
                bytes_dropped += entry.bytes;
                self.release(entry);
            }
            keep
        });
        self.debug_check_resident(&blocks);
        (before - blocks.len(), bytes_dropped)
    }

    /// Drops one map partition's registered output (and its blocks) so a
    /// later [`ShuffleService::claim_recovery`] reports it missing and
    /// re-runs exactly that map task. The remote data plane calls this
    /// when a map output's *payload* is unreachable even though the
    /// driver-side records survive — the referenced bytes died with a
    /// worker process — before failing the reduce with the matching
    /// [`FetchFailedError`].
    pub fn discard_map_output(&self, shuffle_id: usize, map_id: usize) {
        if let Some(maps) = self.outputs.lock().get_mut(&shuffle_id) {
            maps.remove(&map_id);
        }
        let mut blocks = self.blocks.write();
        blocks.retain(|id, entry| {
            let keep = !(id.shuffle_id == shuffle_id && id.map_id == map_id);
            if !keep {
                self.release(entry);
            }
            keep
        });
        self.debug_check_resident(&blocks);
    }

    /// Atomically claims the *recovery* of a shuffle whose completed map
    /// stage lost some output. Exactly one caller per recovery round is
    /// told [`RecoveryClaim::Owner`] with the missing map partitions; the
    /// stage transitions back to in-flight (so dependent schedulers
    /// subscribe rather than fetch) while surviving partitions' blocks and
    /// registrations are kept — the owner re-runs *only* the missing maps.
    /// An unclaimed shuffle (e.g. abandoned by an aborting job) counts as
    /// fully missing.
    pub fn claim_recovery(&self, shuffle_id: usize, num_maps: usize) -> RecoveryClaim {
        let mut stages = self.stages.lock();
        match stages.get(&shuffle_id) {
            Some(MapStageState::InFlight { .. }) => RecoveryClaim::InFlight,
            Some(MapStageState::Completed { num_maps: recorded }) => {
                assert_eq!(
                    *recorded, num_maps,
                    "shuffle {shuffle_id}: recovery claimed with a different map count \
                     than the completed stage recorded"
                );
                self.claim_recovery_locked(&mut stages, shuffle_id, num_maps)
            }
            None => self.claim_recovery_locked(&mut stages, shuffle_id, num_maps),
        }
    }

    /// Second half of [`ShuffleService::claim_recovery`], with the stage
    /// lock held and the in-flight case already ruled out.
    fn claim_recovery_locked(
        &self,
        stages: &mut HashMap<usize, MapStageState>,
        shuffle_id: usize,
        num_maps: usize,
    ) -> RecoveryClaim {
        let outputs = self.outputs.lock();
        let missing: Vec<usize> = match outputs.get(&shuffle_id) {
            Some(maps) => (0..num_maps).filter(|m| !maps.contains_key(m)).collect(),
            None => (0..num_maps).collect(),
        };
        drop(outputs);
        if missing.is_empty() {
            return RecoveryClaim::Recovered;
        }
        stages.insert(
            shuffle_id,
            MapStageState::InFlight {
                waiters: Subscribers::new(),
            },
        );
        RecoveryClaim::Owner { missing }
    }

    /// Total bytes currently resident in memory in the service (for memory
    /// reports and watermark checks). Spilled blocks do not count — their
    /// heap bytes were the point of spilling. O(1): the counter is
    /// maintained on every insert/remove/tier-flip under the block-map
    /// write lock (and checked against a full walk in debug builds), not
    /// recomputed per call — deposits used to pay a full map walk here,
    /// turning an n-block shuffle write phase into O(n²).
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Bytes currently held by this service's on-disk spill tier (framed
    /// file sizes).
    pub fn disk_bytes(&self) -> usize {
        self.spill.disk_bytes()
    }

    /// Bytes deposited for each reduce partition of one shuffle, summed
    /// over its map-side blocks (logical record bytes, both tiers). The
    /// planner reads this after a map stage completes to decide which
    /// reduce buckets are small enough to merge into one task
    /// ([`crate::SpangleContextBuilder::coalesce_partitions`]).
    pub fn reduce_bucket_bytes(&self, shuffle_id: usize, num_reduce: usize) -> Vec<usize> {
        let mut out = vec![0usize; num_reduce];
        for (id, entry) in self.blocks.read().iter() {
            if id.shuffle_id == shuffle_id && id.reduce_id < num_reduce {
                out[id.reduce_id] += entry.bytes;
            }
        }
        out
    }

    /// Number of blocks currently stored (both tiers).
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_fetch_roundtrip_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 1,
            map_id: 0,
            reduce_id: 3,
        };
        let before = ctx.metrics_snapshot();
        svc.put_block(&ctx, id, vec![(1u64, 2.0f64); 10], 160, BlockOrigin::DRIVER);
        let got: Arc<Vec<(u64, f64)>> = svc.fetch_block(&ctx, id);
        assert_eq!(got.len(), 10);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 160);
        assert_eq!(delta.shuffle_read_bytes, 160);
        assert_eq!(delta.shuffle_records, 10);
    }

    #[test]
    fn fetches_share_the_block_instead_of_cloning_it() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 1,
            map_id: 0,
            reduce_id: 0,
        };
        svc.put_block(&ctx, id, vec![1u64, 2, 3], 24, BlockOrigin::DRIVER);
        let a: Arc<Vec<u64>> = svc.fetch_block(&ctx, id);
        let b: Arc<Vec<u64>> = svc.fetch_block(&ctx, id);
        assert!(
            Arc::ptr_eq(&a, &b),
            "two fetches of one resident block must alias, not deep-copy"
        );
    }

    #[test]
    fn missing_block_is_empty_and_free() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let before = ctx.metrics_snapshot();
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 9,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
        assert_eq!((ctx.metrics_snapshot() - before).shuffle_read_bytes, 0);
    }

    #[test]
    fn remove_shuffle_clears_state() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 5,
            map_id: 1,
            reduce_id: 1,
        };
        svc.put_block(&ctx, id, vec![1u64], 8, BlockOrigin::DRIVER);
        svc.mark_completed(5, 2);
        assert!(svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 1);
        svc.remove_shuffle(5);
        assert!(!svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 0);
        assert_eq!(svc.resident_bytes(), 0);
    }

    /// Bugfix regression: a reduce fetch straggling in after lineage GC
    /// removed its shuffle used to read an empty bucket silently (the
    /// `!stages.contains_key` branch). The data existed and is *gone*, not
    /// empty — the fetch must fail typed.
    #[test]
    fn fetch_after_remove_shuffle_fails_typed() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 5,
            map_id: 0,
            reduce_id: 0,
        };
        svc.put_block(&ctx, id, vec![1u64], 8, BlockOrigin::DRIVER);
        svc.register_map_output(&ctx, 5, 0, BlockOrigin::DRIVER);
        svc.mark_completed(5, 1);
        svc.remove_shuffle(5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Arc<Vec<u64>> = svc.fetch_block(&ctx, id);
        }))
        .expect_err("a fetch against a GC'd shuffle must not read as empty");
        assert_eq!(
            *err.downcast_ref::<FetchFailedError>()
                .expect("typed payload"),
            FetchFailedError {
                shuffle_id: 5,
                map_id: 0
            }
        );
        // A shuffle that never had stage state keeps the historical
        // empty-fetch behavior (test-seeded block maps).
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 99,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
    }

    /// Bugfix regression: the O(1) resident counter must track every
    /// insert, replace, discard, and removal exactly (debug builds also
    /// assert it against the full walk inside each mutating op).
    #[test]
    fn resident_counter_tracks_every_mutation() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let id0 = BlockId {
            shuffle_id: 1,
            map_id: 0,
            reduce_id: 0,
        };
        let id1 = BlockId {
            shuffle_id: 1,
            map_id: 1,
            reduce_id: 0,
        };
        svc.put_block(&ctx, id0, vec![1u64, 2], 16, BlockOrigin::DRIVER);
        svc.put_block(&ctx, id1, vec![3u64], 8, BlockOrigin::executor(1, 0));
        assert_eq!(svc.resident_bytes(), 24);
        // Replacing a block swaps its accounted size, not leaks it.
        svc.put_block(&ctx, id0, vec![9u64], 8, BlockOrigin::DRIVER);
        assert_eq!(svc.resident_bytes(), 16);
        svc.discard_executor(1);
        assert_eq!(svc.resident_bytes(), 8);
        svc.remove_shuffle(1);
        assert_eq!(svc.resident_bytes(), 0);
    }

    /// Bugfix regression: `put_block` used to install unconditionally,
    /// letting a late speculative loser (live, but beaten to the commit)
    /// overwrite the winner's block through the legacy path.
    #[test]
    fn put_block_cannot_overwrite_a_live_winner() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let winner = BlockOrigin::executor(0, 0);
        let loser = BlockOrigin::executor(1, 0);
        assert!(svc.commit_map_output(&ctx, 7, 0, vec![(0, vec![111u64], 8)], winner));
        // The loser is alive — only *beaten*. Its late put must be refused.
        let before = ctx.metrics_snapshot();
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 7,
                map_id: 0,
                reduce_id: 0,
            },
            vec![222u64],
            8,
            loser,
        );
        assert_eq!(
            (ctx.metrics_snapshot() - before).shuffle_write_bytes,
            0,
            "refused deposits charge nothing"
        );
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 7,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(*got, vec![111], "the committed winner's block survives");
        // The winner itself may still re-deposit (recovery re-seeds).
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 7,
                map_id: 0,
                reduce_id: 0,
            },
            vec![333u64],
            8,
            winner,
        );
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 7,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(*got, vec![333]);
    }

    #[test]
    fn spill_and_rehydrate_roundtrip_with_accounting() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let records: Vec<(u64, f64)> = (0..100).map(|i| (i, i as f64 * 1.5)).collect();
        for map_id in 0..4 {
            svc.put_block(
                &ctx,
                BlockId {
                    shuffle_id: 1,
                    map_id,
                    reduce_id: 0,
                },
                records.clone(),
                1600,
                BlockOrigin::DRIVER,
            );
        }
        assert_eq!(svc.resident_bytes(), 6400);
        let before = ctx.metrics_snapshot();
        let freed = svc.spill_up_to(&ctx, 3000);
        assert_eq!(freed, 3200, "two coldest blocks demoted");
        assert_eq!(svc.resident_bytes(), 3200);
        assert!(svc.disk_bytes() > 0);
        assert_eq!(svc.num_blocks(), 4, "spilled blocks stay fetchable");
        let mid = ctx.metrics_snapshot();
        assert_eq!((mid - before).blocks_spilled, 2);
        assert!((mid - before).spill_bytes >= (mid - before).disk_resident_bytes);
        // Every block — spilled or resident — fetches bit-identically.
        for map_id in 0..4 {
            let got: Arc<Vec<(u64, f64)>> = svc.fetch_block(
                &ctx,
                BlockId {
                    shuffle_id: 1,
                    map_id,
                    reduce_id: 0,
                },
            );
            assert_eq!(*got, records);
        }
        let after = ctx.metrics_snapshot();
        assert_eq!((after - mid).blocks_rehydrated, 2);
        assert_eq!(svc.resident_bytes(), 6400, "rehydration restores the tier");
        assert_eq!(svc.disk_bytes(), 0, "rehydrated files are deleted");
    }

    #[test]
    fn spilling_prefers_the_least_recently_fetched_block() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        for map_id in 0..3 {
            svc.put_block(
                &ctx,
                BlockId {
                    shuffle_id: 1,
                    map_id,
                    reduce_id: 0,
                },
                vec![map_id as u64; 4],
                32,
                BlockOrigin::DRIVER,
            );
        }
        // Touch block 0 so block 1 becomes the coldest.
        let _: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 1,
                map_id: 0,
                reduce_id: 0,
            },
        );
        svc.spill_up_to(&ctx, 1);
        assert_eq!(svc.resident_bytes(), 64);
        // Block 1 must be the spilled one: fetching it rehydrates.
        let before = ctx.metrics_snapshot();
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 1,
                map_id: 1,
                reduce_id: 0,
            },
        );
        assert_eq!(*got, vec![1, 1, 1, 1]);
        assert_eq!((ctx.metrics_snapshot() - before).blocks_rehydrated, 1);
    }

    #[test]
    fn spilled_blocks_of_a_dead_executor_are_discarded_not_rehydrated() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        seed_two_map_shuffle(&ctx, &svc, 6);
        svc.spill_up_to(&ctx, usize::MAX);
        assert_eq!(svc.resident_bytes(), 0);
        assert!(svc.disk_bytes() > 0);
        let (dropped, bytes) = svc.discard_executor(1);
        assert_eq!(
            (dropped, bytes),
            (1, 8),
            "spilled blocks count toward the discard with their logical bytes"
        );
        // Map 0's spilled block survives and rehydrates; map 1's is gone
        // from disk too and raises a typed fetch failure.
        let ok: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 6,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(*ok, vec![0]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Arc<Vec<u64>> = svc.fetch_block(
                &ctx,
                BlockId {
                    shuffle_id: 6,
                    map_id: 1,
                    reduce_id: 0,
                },
            );
        }))
        .expect_err("a dead incarnation's spilled block must not rehydrate");
        assert!(err.downcast_ref::<FetchFailedError>().is_some());
    }

    #[test]
    fn unspillable_blocks_are_skipped_by_the_sweep() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 1,
                map_id: 0,
                reduce_id: 0,
            },
            vec!["static strings have no stable byte form"],
            64,
            BlockOrigin::DRIVER,
        );
        assert_eq!(svc.spill_up_to(&ctx, usize::MAX), 0);
        assert_eq!(svc.resident_bytes(), 64, "pinned resident");
        assert_eq!(svc.disk_bytes(), 0);
    }

    #[test]
    fn only_one_claimant_becomes_owner() {
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(3), ShuffleClaim::Owner);
        assert_eq!(svc.try_claim(3), ShuffleClaim::InFlight);
        svc.mark_completed(3, 4);
        assert_eq!(svc.try_claim(3), ShuffleClaim::Completed);
    }

    #[test]
    fn abandon_lets_the_next_claimant_own() {
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
        svc.abandon(1);
        assert!(!svc.wait_finished(1), "abandoned, not completed");
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
    }

    #[test]
    fn abandon_drops_the_aborted_attempts_partial_blocks() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(4), ShuffleClaim::Owner);
        // The owner's map tasks deposit some output, then the job aborts.
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 4,
                map_id: 0,
                reduce_id: 0,
            },
            vec![1u64, 2, 3],
            24,
            BlockOrigin::DRIVER,
        );
        // An unrelated completed shuffle must survive the abandon.
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 5,
                map_id: 0,
                reduce_id: 0,
            },
            vec![9u64],
            8,
            BlockOrigin::DRIVER,
        );
        svc.mark_completed(5, 1);
        assert_eq!(svc.resident_bytes(), 32);
        svc.abandon(4);
        assert_eq!(
            svc.resident_bytes(),
            8,
            "the abandoned shuffle's partial blocks must be dropped"
        );
        assert_eq!(svc.num_blocks(), 1);
        assert_eq!(
            svc.try_claim(4),
            ShuffleClaim::Owner,
            "a re-claiming owner starts from a clean slate"
        );
        // Abandon on a completed shuffle stays a no-op.
        svc.abandon(5);
        assert_eq!(svc.resident_bytes(), 8);
    }

    #[test]
    fn subscribe_fires_immediately_when_already_resolved() {
        let svc = ShuffleService::default();
        let (tx, rx) = crate::sync::channel::unbounded();
        // Unclaimed: resolves false synchronously.
        let tx2 = tx.clone();
        svc.subscribe(
            7,
            Box::new(move |done| tx2.send(("unclaimed", done)).unwrap()),
        );
        assert_eq!(rx.try_recv().unwrap(), ("unclaimed", false));
        // Completed: resolves true synchronously.
        svc.mark_completed(7, 2);
        svc.subscribe(
            7,
            Box::new(move |done| tx.send(("completed", done)).unwrap()),
        );
        assert_eq!(rx.try_recv().unwrap(), ("completed", true));
    }

    #[test]
    fn subscribed_callbacks_fire_exactly_once_on_completion_and_abandon() {
        let svc = ShuffleService::default();
        let (tx, rx) = crate::sync::channel::unbounded();
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
        for _ in 0..3 {
            let tx = tx.clone();
            svc.subscribe(1, Box::new(move |done| tx.send(done).unwrap()));
        }
        assert!(rx.try_recv().is_err(), "nothing fires while in flight");
        svc.mark_completed(1, 4);
        assert_eq!(
            (0..3).map(|_| rx.try_recv().unwrap()).collect::<Vec<_>>(),
            vec![true; 3]
        );
        assert!(rx.try_recv().is_err(), "callbacks are one-shot");

        assert_eq!(svc.try_claim(2), ShuffleClaim::Owner);
        let tx2 = tx.clone();
        svc.subscribe(2, Box::new(move |done| tx2.send(done).unwrap()));
        svc.abandon(2);
        assert!(!rx.try_recv().unwrap(), "abandon notifies with false");
        assert_eq!(
            svc.try_claim(2),
            ShuffleClaim::Owner,
            "abandoned stage is re-claimable"
        );
    }

    #[test]
    fn waiters_wake_on_completion() {
        let svc = Arc::new(ShuffleService::default());
        assert_eq!(svc.try_claim(2), ShuffleClaim::Owner);
        let waiter = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.wait_finished(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        svc.mark_completed(2, 1);
        assert!(waiter.join().unwrap(), "waiter must see completion");
    }

    /// The historical check-then-act race: two schedulers checking
    /// `is_completed` before running would both run the map stage. With
    /// the claim API exactly one of N concurrent claimants owns the
    /// stage, no matter the interleaving.
    #[test]
    fn concurrent_claims_elect_exactly_one_owner() {
        for round in 0..50usize {
            let svc = Arc::new(ShuffleService::default());
            let claims: Vec<ShuffleClaim> = (0..4)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    std::thread::spawn(move || svc.try_claim(round))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect();
            let owners = claims.iter().filter(|c| **c == ShuffleClaim::Owner).count();
            assert_eq!(owners, 1, "round {round}: claims were {claims:?}");
            assert!(claims
                .iter()
                .all(|c| matches!(c, ShuffleClaim::Owner | ShuffleClaim::InFlight)));
        }
    }

    /// Seeds a two-map shuffle whose blocks live on executors 0 and 1.
    fn seed_two_map_shuffle(ctx: &SpangleContext, svc: &ShuffleService, shuffle_id: usize) {
        for map_id in 0..2 {
            let origin = BlockOrigin::executor(map_id, 0);
            svc.put_block(
                ctx,
                BlockId {
                    shuffle_id,
                    map_id,
                    reduce_id: 0,
                },
                vec![map_id as u64],
                8,
                origin,
            );
            svc.register_map_output(ctx, shuffle_id, map_id, origin);
        }
        assert!(svc.mark_completed(shuffle_id, 2).is_empty());
    }

    #[test]
    fn mark_completed_reports_unregistered_maps() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        assert_eq!(svc.mark_completed(9, 3), vec![0, 1, 2]);
        svc.register_map_output(&ctx, 9, 1, BlockOrigin::DRIVER);
        assert_eq!(svc.mark_completed(9, 3), vec![0, 2]);
    }

    #[test]
    fn registered_empty_buckets_stay_empty_fetches() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        svc.register_map_output(&ctx, 2, 0, BlockOrigin::DRIVER);
        svc.mark_completed(2, 1);
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 2,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
    }

    #[test]
    fn lost_map_output_raises_fetch_failed() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        seed_two_map_shuffle(&ctx, &svc, 6);
        let (dropped, bytes) = svc.discard_executor(1);
        assert_eq!((dropped, bytes), (1, 8));
        // The surviving map's block still fetches.
        let ok: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 6,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(*ok, vec![0]);
        // The lost one raises a typed fetch failure, not an empty vec.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Arc<Vec<u64>> = svc.fetch_block(
                &ctx,
                BlockId {
                    shuffle_id: 6,
                    map_id: 1,
                    reduce_id: 0,
                },
            );
        }))
        .expect_err("lost output must not fetch as empty");
        let fetch = err
            .downcast_ref::<FetchFailedError>()
            .expect("panic payload is a FetchFailedError");
        assert_eq!(
            *fetch,
            FetchFailedError {
                shuffle_id: 6,
                map_id: 1
            }
        );
    }

    #[test]
    fn recovery_is_claimed_once_and_keeps_survivors() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        seed_two_map_shuffle(&ctx, &svc, 3);
        svc.discard_executor(0);
        let claim = svc.claim_recovery(3, 2);
        assert_eq!(
            claim,
            RecoveryClaim::Owner {
                missing: vec![0],
                // map 1's block survived; only map 0 is re-run
            }
        );
        assert_eq!(
            svc.claim_recovery(3, 2),
            RecoveryClaim::InFlight,
            "one owner per recovery round"
        );
        assert_eq!(svc.resident_bytes(), 8, "survivor block kept");
        // The owner re-runs the missing map and closes the stage again.
        let origin = BlockOrigin::executor(1, 0);
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 3,
                map_id: 0,
                reduce_id: 0,
            },
            vec![7u64],
            8,
            origin,
        );
        svc.register_map_output(&ctx, 3, 0, origin);
        assert!(svc.mark_completed(3, 2).is_empty());
        assert_eq!(svc.claim_recovery(3, 2), RecoveryClaim::Recovered);
        let got: Arc<Vec<u64>> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 3,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(*got, vec![7]);
    }

    #[test]
    fn stale_incarnation_deposits_are_refused() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let stale = BlockOrigin::executor(0, 0);
        ctx.inner.pool.kill(0);
        let before = ctx.metrics_snapshot();
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 1,
                map_id: 0,
                reduce_id: 0,
            },
            vec![1u64],
            8,
            stale,
        );
        svc.register_map_output(&ctx, 1, 0, stale);
        assert_eq!(svc.num_blocks(), 0, "dead incarnations cannot deposit");
        assert_eq!((ctx.metrics_snapshot() - before).shuffle_write_bytes, 0);
        assert_eq!(svc.mark_completed(1, 1), vec![0], "nor register output");
    }
}
