//! The in-memory shuffle service.
//!
//! A shuffle moves every record of a pair RDD from the executor that
//! computed it (the *map* side) to the executor that owns its key's reduce
//! partition. This service plays the role of Spark's shuffle
//! write/fetch path: map tasks deposit per-reduce-partition buckets, reduce
//! tasks fetch them, and every byte that logically crosses the network is
//! charged to the metrics.
//!
//! Besides block storage, the service is the arbiter of *map-stage
//! ownership*. Concurrent jobs (or sibling stages of one job) may share a
//! shuffle dependency; `is_completed`-then-run was a check-then-act race
//! that could run the same map stage twice. Schedulers now
//! [`ShuffleService::try_claim`] a shuffle: exactly one caller becomes the
//! owner and runs the stage, everyone else either reuses the completed
//! output or registers a completion callback via
//! [`ShuffleService::subscribe`]. Subscription is checked under the same
//! lock as the stage state, so a callback can never be lost to a
//! check-then-subscribe race — it fires immediately when the stage is
//! already resolved, and exactly once from
//! [`ShuffleService::mark_completed`] / [`ShuffleService::abandon`]
//! otherwise. No thread ever parks inside the service on behalf of a
//! scheduler: stage readiness is event-driven end to end.
//!
//! The service is also executor-loss aware. Every block is attributed to
//! the executor incarnation ([`BlockOrigin`]) that produced it, and every
//! map task registers its output — even an all-empty one — in a
//! per-shuffle registry ([`ShuffleService::register_map_output`]). When an
//! executor dies, [`ShuffleService::discard_executor`] drops its blocks
//! and registrations; a reduce task that later fetches a block whose map
//! output is no longer registered panics with a typed
//! [`FetchFailedError`] instead of silently reading an empty bucket. The
//! scheduler catches that panic, claims the *recovery* of the shuffle
//! ([`ShuffleService::claim_recovery`] — the re-run analogue of
//! [`ShuffleService::try_claim`]) and resubmits only the missing map
//! partitions from lineage.

use crate::executor::BlockOrigin;
use crate::metrics::MetricField;
use crate::sync::{Mutex, RwLock, Subscribers};
use crate::SpangleContext;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Key of one shuffle block: output of map partition `map_id` destined for
/// reduce partition `reduce_id` of shuffle `shuffle_id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// The shuffle this block belongs to.
    pub shuffle_id: usize,
    /// Map-side partition that produced the block.
    pub map_id: usize,
    /// Reduce-side partition the block is destined for.
    pub reduce_id: usize,
}

type BlockPayload = Arc<dyn Any + Send + Sync>;

/// A one-shot completion callback: `true` means the map stage completed,
/// `false` that its owner abandoned it (or the shuffle was removed).
pub type ShuffleCallback = Box<dyn FnOnce(bool) + Send>;

/// Map-stage progress of one shuffle.
enum MapStageState {
    /// Some job claimed the map stage and is running it; `waiters` fire
    /// when it resolves.
    InFlight { waiters: Subscribers<bool> },
    /// The map stage ran to completion with this many map partitions.
    Completed { num_maps: usize },
}

/// Panic payload raised by [`ShuffleService::fetch_block`] when the block's
/// map output was lost after the map stage completed (the executor that
/// produced it died). The scheduler downcasts this out of the task panic
/// and turns it into [`crate::TaskError::FetchFailed`], which triggers
/// lineage-based resubmission of exactly the missing map partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchFailedError {
    /// Shuffle whose map output is gone.
    pub shuffle_id: usize,
    /// Map partition whose output is missing.
    pub map_id: usize,
}

/// Outcome of [`ShuffleService::claim_recovery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryClaim {
    /// The caller owns the recovery and must re-run exactly the `missing`
    /// map partitions, then [`ShuffleService::mark_completed`] (or
    /// [`ShuffleService::abandon`]) the stage again. Surviving partitions'
    /// blocks and registrations are kept.
    Owner {
        /// Map partitions whose output must be recomputed, ascending.
        missing: Vec<usize>,
    },
    /// Another scheduler is already re-running the map stage; register a
    /// callback with [`ShuffleService::subscribe`].
    InFlight,
    /// Every map partition is registered again (someone else already
    /// recovered the shuffle); the caller can re-fetch immediately.
    Recovered,
}

/// Outcome of [`ShuffleService::try_claim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShuffleClaim {
    /// The caller now owns the map stage and must run it, then call
    /// [`ShuffleService::mark_completed`] or [`ShuffleService::abandon`].
    Owner,
    /// The map stage already ran; its output can be read immediately.
    Completed,
    /// Another scheduler is running the map stage right now; register a
    /// callback with [`ShuffleService::subscribe`] (or block on
    /// [`ShuffleService::wait_finished`]).
    InFlight,
}

/// Stores shuffle blocks between stages and tracks map-stage ownership.
#[derive(Default)]
pub struct ShuffleService {
    blocks: RwLock<HashMap<BlockId, (BlockPayload, usize, BlockOrigin)>>,
    /// Per-shuffle map-stage state; absent means "never run, unclaimed".
    stages: Mutex<HashMap<usize, MapStageState>>,
    /// Per-shuffle registry of which executor incarnation produced each map
    /// partition's output. A map task registers here even when every bucket
    /// it produced was empty, so "block absent but map registered" means an
    /// empty bucket while "absent and unregistered" means the output was
    /// lost with its executor.
    outputs: Mutex<HashMap<usize, HashMap<usize, BlockOrigin>>>,
}

impl ShuffleService {
    /// Deposits the bucket for one (map, reduce) pair. `bytes` is the deep
    /// size of the records, charged as shuffle write volume.
    ///
    /// A deposit from a dead executor incarnation (killed while the map
    /// task was running) is silently dropped — its blocks were already
    /// discarded and the task's attempt is being replayed elsewhere, so
    /// accepting the stale write would interleave two attempts' output.
    pub fn put_block<T: Send + Sync + 'static>(
        &self,
        ctx: &SpangleContext,
        id: BlockId,
        records: Vec<T>,
        bytes: usize,
        origin: BlockOrigin,
    ) {
        if !ctx.inner.pool.origin_is_live(origin) {
            return;
        }
        ctx.metrics()
            .add(MetricField::ShuffleWriteBytes, bytes as u64);
        ctx.metrics()
            .add(MetricField::ShuffleRecords, records.len() as u64);
        self.blocks
            .write()
            .insert(id, (Arc::new(records), bytes, origin));
        // Resident cache + shuffle memory is what admission control's high
        // watermark is evaluated against; record its peak where it grows.
        ctx.metrics().raise(
            MetricField::MemoryHighwaterBytes,
            (self.resident_bytes() + ctx.cached_bytes()) as u64,
        );
    }

    /// Records that map partition `map_id` of `shuffle_id` deposited all
    /// its (possibly empty) buckets. Every map task calls this once at the
    /// end, so [`ShuffleService::fetch_block`] can tell a legitimately
    /// empty bucket from one lost with its executor. Registrations from a
    /// dead incarnation are dropped like stale block deposits.
    pub fn register_map_output(
        &self,
        ctx: &SpangleContext,
        shuffle_id: usize,
        map_id: usize,
        origin: BlockOrigin,
    ) {
        if !ctx.inner.pool.origin_is_live(origin) {
            return;
        }
        self.outputs
            .lock()
            .entry(shuffle_id)
            .or_default()
            .insert(map_id, origin);
    }

    /// Atomically deposits *all* buckets of one map task and registers its
    /// output, first-write-wins. Under speculative execution two attempts
    /// of the same map partition race; whichever commits first installs
    /// its complete bucket set, and the loser's deposit is refused as a
    /// unit so two attempts' output can never interleave. Returns whether
    /// this attempt won.
    ///
    /// A commit loses when the (shuffle, map) pair is already registered
    /// by a live incarnation, or when the depositing incarnation itself is
    /// dead (killed mid-task — same rule as [`ShuffleService::put_block`]).
    /// Losing commits charge no shuffle-write volume.
    pub fn commit_map_output<T: Send + Sync + 'static>(
        &self,
        ctx: &SpangleContext,
        shuffle_id: usize,
        map_id: usize,
        buckets: Vec<(usize, Vec<T>, usize)>,
        origin: BlockOrigin,
    ) -> bool {
        if !ctx.inner.pool.origin_is_live(origin) {
            return false;
        }
        let mut outputs = self.outputs.lock();
        let maps = outputs.entry(shuffle_id).or_default();
        if let Some(existing) = maps.get(&map_id) {
            if ctx.inner.pool.origin_is_live(*existing) {
                return false;
            }
        }
        maps.insert(map_id, origin);
        let mut total_bytes = 0u64;
        let mut total_records = 0u64;
        {
            let mut blocks = self.blocks.write();
            for (reduce_id, records, bytes) in buckets {
                total_bytes += bytes as u64;
                total_records += records.len() as u64;
                blocks.insert(
                    BlockId {
                        shuffle_id,
                        map_id,
                        reduce_id,
                    },
                    (Arc::new(records) as BlockPayload, bytes, origin),
                );
            }
        }
        drop(outputs);
        ctx.metrics()
            .add(MetricField::ShuffleWriteBytes, total_bytes);
        ctx.metrics()
            .add(MetricField::ShuffleRecords, total_records);
        ctx.metrics().raise(
            MetricField::MemoryHighwaterBytes,
            (self.resident_bytes() + ctx.cached_bytes()) as u64,
        );
        true
    }

    /// Fetches one bucket, charging shuffle read volume. Returns an empty
    /// vector when the map task produced nothing for this reduce partition.
    ///
    /// # Panics
    ///
    /// Panics with a [`FetchFailedError`] payload when the block is absent
    /// *and* its map partition is not registered for a shuffle whose map
    /// stage ran: the output existed and was lost (executor death), so the
    /// caller must not treat it as empty. The scheduler converts this
    /// panic into [`crate::TaskError::FetchFailed`] and recovers.
    pub fn fetch_block<T: Clone + Send + Sync + 'static>(
        &self,
        ctx: &SpangleContext,
        id: BlockId,
    ) -> Vec<T> {
        {
            let guard = self.blocks.read();
            if let Some((payload, bytes, _)) = guard.get(&id) {
                ctx.metrics()
                    .add(MetricField::ShuffleReadBytes, *bytes as u64);
                return payload
                    .clone()
                    .downcast::<Vec<T>>()
                    .expect("shuffle block type mismatch: reduce side fetched a different type than the map side wrote")
                    .as_ref()
                    .clone();
            }
        }
        let registered = self
            .outputs
            .lock()
            .get(&id.shuffle_id)
            .is_some_and(|maps| maps.contains_key(&id.map_id));
        if registered || !self.stages.lock().contains_key(&id.shuffle_id) {
            // Registered-but-absent is a genuinely empty bucket; no stage
            // state at all means a test seeded blocks by hand — keep the
            // historical empty-fetch behavior for those.
            return Vec::new();
        }
        std::panic::panic_any(FetchFailedError {
            shuffle_id: id.shuffle_id,
            map_id: id.map_id,
        });
    }

    /// Atomically claims the map stage of `shuffle_id`. At most one caller
    /// is ever told [`ShuffleClaim::Owner`] per run of the stage; the
    /// owner must finish with [`ShuffleService::mark_completed`] (success)
    /// or [`ShuffleService::abandon`] (job abort) so waiters wake up.
    pub fn try_claim(&self, shuffle_id: usize) -> ShuffleClaim {
        let mut stages = self.stages.lock();
        match stages.get(&shuffle_id) {
            Some(MapStageState::Completed { .. }) => ShuffleClaim::Completed,
            Some(MapStageState::InFlight { .. }) => ShuffleClaim::InFlight,
            None => {
                stages.insert(
                    shuffle_id,
                    MapStageState::InFlight {
                        waiters: Subscribers::new(),
                    },
                );
                ShuffleClaim::Owner
            }
        }
    }

    /// Registers a one-shot callback on the map stage of `shuffle_id`.
    ///
    /// The state check and registration happen under one lock, so a
    /// callback can never miss its notification: if the stage is already
    /// `Completed` the callback fires immediately with `true`; if it is
    /// unclaimed (never run, or abandoned) it fires immediately with
    /// `false` (the caller should [`ShuffleService::try_claim`]); if it is
    /// in flight, the callback fires exactly once when the owner
    /// [`ShuffleService::mark_completed`]s (`true`) or
    /// [`ShuffleService::abandon`]s (`false`) the stage.
    ///
    /// Callbacks run on whatever thread resolves the stage (an executor
    /// or another job's driver) and must not block; schedulers send an
    /// event into their own channel.
    pub fn subscribe(&self, shuffle_id: usize, callback: ShuffleCallback) {
        let mut stages = self.stages.lock();
        match stages.get_mut(&shuffle_id) {
            Some(MapStageState::InFlight { waiters }) => {
                waiters.push(callback);
            }
            Some(MapStageState::Completed { .. }) => {
                drop(stages);
                callback(true);
            }
            None => {
                drop(stages);
                callback(false);
            }
        }
    }

    /// Marks the map stage of `shuffle_id` complete with `num_maps` map
    /// partitions, firing any subscribed callbacks. Callable with or
    /// without a prior claim (tests seed completed shuffles directly).
    ///
    /// Validates the deposit against the map-output registry and returns
    /// the map partitions that never registered, ascending. Non-empty
    /// means some output is already gone — typically because the executor
    /// that ran those maps died after finishing them but before the stage
    /// closed. The first reduce task to touch a missing partition raises
    /// [`FetchFailedError`] and the scheduler recovers, so callers may
    /// ignore the list; tests that seed completions without deposits get
    /// the full range back.
    pub fn mark_completed(&self, shuffle_id: usize, num_maps: usize) -> Vec<usize> {
        let mut stages = self.stages.lock();
        let previous = stages.insert(shuffle_id, MapStageState::Completed { num_maps });
        let outputs = self.outputs.lock();
        let missing = match outputs.get(&shuffle_id) {
            Some(maps) => (0..num_maps).filter(|m| !maps.contains_key(m)).collect(),
            None => (0..num_maps).collect(),
        };
        drop(outputs);
        drop(stages);
        if let Some(MapStageState::InFlight { waiters }) = previous {
            waiters.fire(true);
        }
        missing
    }

    /// Releases an [`ShuffleClaim::Owner`] claim without completing the
    /// stage (the owning job aborted). Subscribed callbacks fire with
    /// `false` and their schedulers race to re-claim.
    ///
    /// Any partial map output the aborted attempt already deposited is
    /// dropped with the claim: leaving it resident would leak
    /// `resident_bytes` until shuffle GC, and a re-claiming owner would
    /// interleave its fresh blocks with the aborted attempt's stale ones.
    pub fn abandon(&self, shuffle_id: usize) {
        let mut stages = self.stages.lock();
        let abandoned = match stages.get(&shuffle_id) {
            Some(MapStageState::InFlight { .. }) => stages.remove(&shuffle_id),
            _ => None,
        };
        drop(stages);
        if let Some(MapStageState::InFlight { waiters }) = abandoned {
            self.outputs.lock().remove(&shuffle_id);
            self.blocks
                .write()
                .retain(|id, _| id.shuffle_id != shuffle_id);
            waiters.fire(false);
        }
    }

    /// Blocks until the map stage of `shuffle_id` is no longer in flight.
    /// Returns `true` when it completed, `false` when the owner abandoned
    /// it (the caller should [`ShuffleService::try_claim`] again).
    ///
    /// This is [`ShuffleService::subscribe`] plus a channel for callers
    /// that genuinely have nothing else to do; the scheduler itself never
    /// blocks here.
    pub fn wait_finished(&self, shuffle_id: usize) -> bool {
        let (tx, rx) = crate::sync::channel::unbounded();
        self.subscribe(
            shuffle_id,
            Box::new(move |completed| {
                let _ = tx.send(completed);
            }),
        );
        rx.recv().unwrap_or(false)
    }

    /// Whether the map stage of `shuffle_id` already ran.
    pub fn is_completed(&self, shuffle_id: usize) -> bool {
        matches!(
            self.stages.lock().get(&shuffle_id),
            Some(MapStageState::Completed { .. })
        )
    }

    /// Drops all blocks and completion state of one shuffle. Called when
    /// the owning dependency is garbage-collected so iterative jobs do not
    /// accumulate dead shuffle outputs. Any callbacks still subscribed
    /// (there should be none by GC time) fire with `false`.
    pub fn remove_shuffle(&self, shuffle_id: usize) {
        let removed = self.stages.lock().remove(&shuffle_id);
        if let Some(MapStageState::InFlight { waiters }) = removed {
            waiters.fire(false);
        }
        self.outputs.lock().remove(&shuffle_id);
        self.blocks
            .write()
            .retain(|id, _| id.shuffle_id != shuffle_id);
    }

    /// Drops every block and map-output registration produced by the given
    /// executor (any incarnation), across all shuffles. Called when an
    /// executor is killed. Returns `(blocks_dropped, bytes_dropped)`.
    ///
    /// Completion state is deliberately left alone: a shuffle stays
    /// `Completed` with holes, and the holes surface as
    /// [`FetchFailedError`] on the next fetch so recovery is driven by the
    /// jobs that actually need the data.
    pub fn discard_executor(&self, executor: usize) -> (usize, usize) {
        for maps in self.outputs.lock().values_mut() {
            maps.retain(|_, origin| !origin.lives_on(executor));
        }
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        let mut bytes_dropped = 0;
        blocks.retain(|_, (_, bytes, origin)| {
            let keep = !origin.lives_on(executor);
            if !keep {
                bytes_dropped += *bytes;
            }
            keep
        });
        (before - blocks.len(), bytes_dropped)
    }

    /// Atomically claims the *recovery* of a shuffle whose completed map
    /// stage lost some output. Exactly one caller per recovery round is
    /// told [`RecoveryClaim::Owner`] with the missing map partitions; the
    /// stage transitions back to in-flight (so dependent schedulers
    /// subscribe rather than fetch) while surviving partitions' blocks and
    /// registrations are kept — the owner re-runs *only* the missing maps.
    /// An unclaimed shuffle (e.g. abandoned by an aborting job) counts as
    /// fully missing.
    pub fn claim_recovery(&self, shuffle_id: usize, num_maps: usize) -> RecoveryClaim {
        let mut stages = self.stages.lock();
        match stages.get(&shuffle_id) {
            Some(MapStageState::InFlight { .. }) => RecoveryClaim::InFlight,
            Some(MapStageState::Completed { num_maps: recorded }) => {
                assert_eq!(
                    *recorded, num_maps,
                    "shuffle {shuffle_id}: recovery claimed with a different map count \
                     than the completed stage recorded"
                );
                self.claim_recovery_locked(&mut stages, shuffle_id, num_maps)
            }
            None => self.claim_recovery_locked(&mut stages, shuffle_id, num_maps),
        }
    }

    /// Second half of [`ShuffleService::claim_recovery`], with the stage
    /// lock held and the in-flight case already ruled out.
    fn claim_recovery_locked(
        &self,
        stages: &mut HashMap<usize, MapStageState>,
        shuffle_id: usize,
        num_maps: usize,
    ) -> RecoveryClaim {
        let outputs = self.outputs.lock();
        let missing: Vec<usize> = match outputs.get(&shuffle_id) {
            Some(maps) => (0..num_maps).filter(|m| !maps.contains_key(m)).collect(),
            None => (0..num_maps).collect(),
        };
        drop(outputs);
        if missing.is_empty() {
            return RecoveryClaim::Recovered;
        }
        stages.insert(
            shuffle_id,
            MapStageState::InFlight {
                waiters: Subscribers::new(),
            },
        );
        RecoveryClaim::Owner { missing }
    }

    /// Total bytes currently resident in the service (for memory reports).
    pub fn resident_bytes(&self) -> usize {
        self.blocks.read().values().map(|(_, b, _)| *b).sum()
    }

    /// Bytes deposited for each reduce partition of one shuffle, summed
    /// over its map-side blocks. The planner reads this after a map stage
    /// completes to decide which reduce buckets are small enough to merge
    /// into one task ([`crate::SpangleContextBuilder::coalesce_partitions`]).
    pub fn reduce_bucket_bytes(&self, shuffle_id: usize, num_reduce: usize) -> Vec<usize> {
        let mut out = vec![0usize; num_reduce];
        for (id, (_, bytes, _)) in self.blocks.read().iter() {
            if id.shuffle_id == shuffle_id && id.reduce_id < num_reduce {
                out[id.reduce_id] += *bytes;
            }
        }
        out
    }

    /// Number of blocks currently stored.
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_fetch_roundtrip_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 1,
            map_id: 0,
            reduce_id: 3,
        };
        let before = ctx.metrics_snapshot();
        svc.put_block(&ctx, id, vec![(1u64, 2.0f64); 10], 160, BlockOrigin::DRIVER);
        let got: Vec<(u64, f64)> = svc.fetch_block(&ctx, id);
        assert_eq!(got.len(), 10);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 160);
        assert_eq!(delta.shuffle_read_bytes, 160);
        assert_eq!(delta.shuffle_records, 10);
    }

    #[test]
    fn missing_block_is_empty_and_free() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let before = ctx.metrics_snapshot();
        let got: Vec<u64> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 9,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
        assert_eq!((ctx.metrics_snapshot() - before).shuffle_read_bytes, 0);
    }

    #[test]
    fn remove_shuffle_clears_state() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 5,
            map_id: 1,
            reduce_id: 1,
        };
        svc.put_block(&ctx, id, vec![1u64], 8, BlockOrigin::DRIVER);
        svc.mark_completed(5, 2);
        assert!(svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 1);
        svc.remove_shuffle(5);
        assert!(!svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 0);
        assert_eq!(svc.resident_bytes(), 0);
    }

    #[test]
    fn only_one_claimant_becomes_owner() {
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(3), ShuffleClaim::Owner);
        assert_eq!(svc.try_claim(3), ShuffleClaim::InFlight);
        svc.mark_completed(3, 4);
        assert_eq!(svc.try_claim(3), ShuffleClaim::Completed);
    }

    #[test]
    fn abandon_lets_the_next_claimant_own() {
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
        svc.abandon(1);
        assert!(!svc.wait_finished(1), "abandoned, not completed");
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
    }

    #[test]
    fn abandon_drops_the_aborted_attempts_partial_blocks() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        assert_eq!(svc.try_claim(4), ShuffleClaim::Owner);
        // The owner's map tasks deposit some output, then the job aborts.
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 4,
                map_id: 0,
                reduce_id: 0,
            },
            vec![1u64, 2, 3],
            24,
            BlockOrigin::DRIVER,
        );
        // An unrelated completed shuffle must survive the abandon.
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 5,
                map_id: 0,
                reduce_id: 0,
            },
            vec![9u64],
            8,
            BlockOrigin::DRIVER,
        );
        svc.mark_completed(5, 1);
        assert_eq!(svc.resident_bytes(), 32);
        svc.abandon(4);
        assert_eq!(
            svc.resident_bytes(),
            8,
            "the abandoned shuffle's partial blocks must be dropped"
        );
        assert_eq!(svc.num_blocks(), 1);
        assert_eq!(
            svc.try_claim(4),
            ShuffleClaim::Owner,
            "a re-claiming owner starts from a clean slate"
        );
        // Abandon on a completed shuffle stays a no-op.
        svc.abandon(5);
        assert_eq!(svc.resident_bytes(), 8);
    }

    #[test]
    fn subscribe_fires_immediately_when_already_resolved() {
        let svc = ShuffleService::default();
        let (tx, rx) = crate::sync::channel::unbounded();
        // Unclaimed: resolves false synchronously.
        let tx2 = tx.clone();
        svc.subscribe(
            7,
            Box::new(move |done| tx2.send(("unclaimed", done)).unwrap()),
        );
        assert_eq!(rx.try_recv().unwrap(), ("unclaimed", false));
        // Completed: resolves true synchronously.
        svc.mark_completed(7, 2);
        svc.subscribe(
            7,
            Box::new(move |done| tx.send(("completed", done)).unwrap()),
        );
        assert_eq!(rx.try_recv().unwrap(), ("completed", true));
    }

    #[test]
    fn subscribed_callbacks_fire_exactly_once_on_completion_and_abandon() {
        let svc = ShuffleService::default();
        let (tx, rx) = crate::sync::channel::unbounded();
        assert_eq!(svc.try_claim(1), ShuffleClaim::Owner);
        for _ in 0..3 {
            let tx = tx.clone();
            svc.subscribe(1, Box::new(move |done| tx.send(done).unwrap()));
        }
        assert!(rx.try_recv().is_err(), "nothing fires while in flight");
        svc.mark_completed(1, 4);
        assert_eq!(
            (0..3).map(|_| rx.try_recv().unwrap()).collect::<Vec<_>>(),
            vec![true; 3]
        );
        assert!(rx.try_recv().is_err(), "callbacks are one-shot");

        assert_eq!(svc.try_claim(2), ShuffleClaim::Owner);
        let tx2 = tx.clone();
        svc.subscribe(2, Box::new(move |done| tx2.send(done).unwrap()));
        svc.abandon(2);
        assert!(!rx.try_recv().unwrap(), "abandon notifies with false");
        assert_eq!(
            svc.try_claim(2),
            ShuffleClaim::Owner,
            "abandoned stage is re-claimable"
        );
    }

    #[test]
    fn waiters_wake_on_completion() {
        let svc = Arc::new(ShuffleService::default());
        assert_eq!(svc.try_claim(2), ShuffleClaim::Owner);
        let waiter = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.wait_finished(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        svc.mark_completed(2, 1);
        assert!(waiter.join().unwrap(), "waiter must see completion");
    }

    /// The historical check-then-act race: two schedulers checking
    /// `is_completed` before running would both run the map stage. With
    /// the claim API exactly one of N concurrent claimants owns the
    /// stage, no matter the interleaving.
    #[test]
    fn concurrent_claims_elect_exactly_one_owner() {
        for round in 0..50usize {
            let svc = Arc::new(ShuffleService::default());
            let claims: Vec<ShuffleClaim> = (0..4)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    std::thread::spawn(move || svc.try_claim(round))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect();
            let owners = claims.iter().filter(|c| **c == ShuffleClaim::Owner).count();
            assert_eq!(owners, 1, "round {round}: claims were {claims:?}");
            assert!(claims
                .iter()
                .all(|c| matches!(c, ShuffleClaim::Owner | ShuffleClaim::InFlight)));
        }
    }

    /// Seeds a two-map shuffle whose blocks live on executors 0 and 1.
    fn seed_two_map_shuffle(ctx: &SpangleContext, svc: &ShuffleService, shuffle_id: usize) {
        for map_id in 0..2 {
            let origin = BlockOrigin::executor(map_id, 0);
            svc.put_block(
                ctx,
                BlockId {
                    shuffle_id,
                    map_id,
                    reduce_id: 0,
                },
                vec![map_id as u64],
                8,
                origin,
            );
            svc.register_map_output(ctx, shuffle_id, map_id, origin);
        }
        assert!(svc.mark_completed(shuffle_id, 2).is_empty());
    }

    #[test]
    fn mark_completed_reports_unregistered_maps() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        assert_eq!(svc.mark_completed(9, 3), vec![0, 1, 2]);
        svc.register_map_output(&ctx, 9, 1, BlockOrigin::DRIVER);
        assert_eq!(svc.mark_completed(9, 3), vec![0, 2]);
    }

    #[test]
    fn registered_empty_buckets_stay_empty_fetches() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        svc.register_map_output(&ctx, 2, 0, BlockOrigin::DRIVER);
        svc.mark_completed(2, 1);
        let got: Vec<u64> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 2,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
    }

    #[test]
    fn lost_map_output_raises_fetch_failed() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        seed_two_map_shuffle(&ctx, &svc, 6);
        let (dropped, bytes) = svc.discard_executor(1);
        assert_eq!((dropped, bytes), (1, 8));
        // The surviving map's block still fetches.
        let ok: Vec<u64> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 6,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(ok, vec![0]);
        // The lost one raises a typed fetch failure, not an empty vec.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<u64> = svc.fetch_block(
                &ctx,
                BlockId {
                    shuffle_id: 6,
                    map_id: 1,
                    reduce_id: 0,
                },
            );
        }))
        .expect_err("lost output must not fetch as empty");
        let fetch = err
            .downcast_ref::<FetchFailedError>()
            .expect("panic payload is a FetchFailedError");
        assert_eq!(
            *fetch,
            FetchFailedError {
                shuffle_id: 6,
                map_id: 1
            }
        );
    }

    #[test]
    fn recovery_is_claimed_once_and_keeps_survivors() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        seed_two_map_shuffle(&ctx, &svc, 3);
        svc.discard_executor(0);
        let claim = svc.claim_recovery(3, 2);
        assert_eq!(
            claim,
            RecoveryClaim::Owner {
                missing: vec![0],
                // map 1's block survived; only map 0 is re-run
            }
        );
        assert_eq!(
            svc.claim_recovery(3, 2),
            RecoveryClaim::InFlight,
            "one owner per recovery round"
        );
        assert_eq!(svc.resident_bytes(), 8, "survivor block kept");
        // The owner re-runs the missing map and closes the stage again.
        let origin = BlockOrigin::executor(1, 0);
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 3,
                map_id: 0,
                reduce_id: 0,
            },
            vec![7u64],
            8,
            origin,
        );
        svc.register_map_output(&ctx, 3, 0, origin);
        assert!(svc.mark_completed(3, 2).is_empty());
        assert_eq!(svc.claim_recovery(3, 2), RecoveryClaim::Recovered);
        let got: Vec<u64> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 3,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn stale_incarnation_deposits_are_refused() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let stale = BlockOrigin::executor(0, 0);
        ctx.inner.pool.kill(0);
        let before = ctx.metrics_snapshot();
        svc.put_block(
            &ctx,
            BlockId {
                shuffle_id: 1,
                map_id: 0,
                reduce_id: 0,
            },
            vec![1u64],
            8,
            stale,
        );
        svc.register_map_output(&ctx, 1, 0, stale);
        assert_eq!(svc.num_blocks(), 0, "dead incarnations cannot deposit");
        assert_eq!((ctx.metrics_snapshot() - before).shuffle_write_bytes, 0);
        assert_eq!(svc.mark_completed(1, 1), vec![0], "nor register output");
    }
}
