//! The in-memory shuffle service.
//!
//! A shuffle moves every record of a pair RDD from the executor that
//! computed it (the *map* side) to the executor that owns its key's reduce
//! partition. This service plays the role of Spark's shuffle
//! write/fetch path: map tasks deposit per-reduce-partition buckets, reduce
//! tasks fetch them, and every byte that logically crosses the network is
//! charged to the metrics.

use crate::metrics::MetricField;
use crate::SpangleContext;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Key of one shuffle block: output of map partition `map_id` destined for
/// reduce partition `reduce_id` of shuffle `shuffle_id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// The shuffle this block belongs to.
    pub shuffle_id: usize,
    /// Map-side partition that produced the block.
    pub map_id: usize,
    /// Reduce-side partition the block is destined for.
    pub reduce_id: usize,
}

type BlockPayload = Arc<dyn Any + Send + Sync>;

/// Stores shuffle blocks between stages.
#[derive(Default)]
pub struct ShuffleService {
    blocks: RwLock<HashMap<BlockId, (BlockPayload, usize)>>,
    /// Shuffles whose map stage ran to completion; the scheduler skips
    /// re-running those stages (Spark's "skipped stage" behaviour).
    completed: RwLock<HashSet<usize>>,
    /// Number of map partitions per completed shuffle.
    map_counts: RwLock<HashMap<usize, usize>>,
}

impl ShuffleService {
    /// Deposits the bucket for one (map, reduce) pair. `bytes` is the deep
    /// size of the records, charged as shuffle write volume.
    pub fn put_block<T: Send + Sync + 'static>(
        &self,
        ctx: &SpangleContext,
        id: BlockId,
        records: Vec<T>,
        bytes: usize,
    ) {
        ctx.metrics().add(MetricField::ShuffleWriteBytes, bytes as u64);
        ctx.metrics()
            .add(MetricField::ShuffleRecords, records.len() as u64);
        self.blocks
            .write()
            .insert(id, (Arc::new(records), bytes));
    }

    /// Fetches one bucket, charging shuffle read volume. Returns an empty
    /// vector when the map task produced nothing for this reduce partition.
    pub fn fetch_block<T: Clone + Send + Sync + 'static>(
        &self,
        ctx: &SpangleContext,
        id: BlockId,
    ) -> Vec<T> {
        let guard = self.blocks.read();
        match guard.get(&id) {
            Some((payload, bytes)) => {
                ctx.metrics()
                    .add(MetricField::ShuffleReadBytes, *bytes as u64);
                payload
                    .clone()
                    .downcast::<Vec<T>>()
                    .expect("shuffle block type mismatch: reduce side fetched a different type than the map side wrote")
                    .as_ref()
                    .clone()
            }
            None => Vec::new(),
        }
    }

    /// Marks the map stage of `shuffle_id` complete with `num_maps` map
    /// partitions.
    pub fn mark_completed(&self, shuffle_id: usize, num_maps: usize) {
        self.completed.write().insert(shuffle_id);
        self.map_counts.write().insert(shuffle_id, num_maps);
    }

    /// Whether the map stage of `shuffle_id` already ran.
    pub fn is_completed(&self, shuffle_id: usize) -> bool {
        self.completed.read().contains(&shuffle_id)
    }

    /// Drops all blocks and completion state of one shuffle. Called when
    /// the owning dependency is garbage-collected so iterative jobs do not
    /// accumulate dead shuffle outputs.
    pub fn remove_shuffle(&self, shuffle_id: usize) {
        self.completed.write().remove(&shuffle_id);
        self.map_counts.write().remove(&shuffle_id);
        self.blocks
            .write()
            .retain(|id, _| id.shuffle_id != shuffle_id);
    }

    /// Total bytes currently resident in the service (for memory reports).
    pub fn resident_bytes(&self) -> usize {
        self.blocks.read().values().map(|(_, b)| *b).sum()
    }

    /// Number of blocks currently stored.
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_fetch_roundtrip_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 1,
            map_id: 0,
            reduce_id: 3,
        };
        let before = ctx.metrics_snapshot();
        svc.put_block(&ctx, id, vec![(1u64, 2.0f64); 10], 160);
        let got: Vec<(u64, f64)> = svc.fetch_block(&ctx, id);
        assert_eq!(got.len(), 10);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 160);
        assert_eq!(delta.shuffle_read_bytes, 160);
        assert_eq!(delta.shuffle_records, 10);
    }

    #[test]
    fn missing_block_is_empty_and_free() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let before = ctx.metrics_snapshot();
        let got: Vec<u64> = svc.fetch_block(
            &ctx,
            BlockId {
                shuffle_id: 9,
                map_id: 0,
                reduce_id: 0,
            },
        );
        assert!(got.is_empty());
        assert_eq!((ctx.metrics_snapshot() - before).shuffle_read_bytes, 0);
    }

    #[test]
    fn remove_shuffle_clears_state() {
        let ctx = SpangleContext::new(1);
        let svc = ShuffleService::default();
        let id = BlockId {
            shuffle_id: 5,
            map_id: 1,
            reduce_id: 1,
        };
        svc.put_block(&ctx, id, vec![1u64], 8);
        svc.mark_completed(5, 2);
        assert!(svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 1);
        svc.remove_shuffle(5);
        assert!(!svc.is_completed(5));
        assert_eq!(svc.num_blocks(), 0);
        assert_eq!(svc.resident_bytes(), 0);
    }
}
