//! Parsing of `SPANGLE_*` environment knobs.
//!
//! Every knob funnels through [`env_parse`] so an invalid value is never
//! silently ignored: the first time a malformed knob is seen, one warning
//! goes to stderr naming the variable, the rejected value, and the
//! default that will be used instead. (Silently falling back used to turn
//! a typo like `SPANGLE_HEARTBEAT_MS=abc` into a whole CI leg running at
//! defaults while claiming otherwise.)

use crate::sync::Mutex;
use std::collections::HashSet;
use std::str::FromStr;
use std::sync::OnceLock;

/// Variables already warned about, so a knob read in a loop (builders are
/// constructed per test) complains exactly once per process.
fn warned() -> &'static Mutex<HashSet<String>> {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Reads and parses the environment knob `var`.
///
/// * unset (or not valid UTF-8 and empty) — `None`, silently;
/// * set to a value `T` parses — `Some(value)`;
/// * set to anything else — `None`, after warning once to stderr that the
///   value was rejected and the built-in default stands.
pub(crate) fn env_parse<T: FromStr>(var: &str) -> Option<T> {
    let raw = std::env::var_os(var)?;
    let text = raw.to_string_lossy();
    match text.trim().parse::<T>() {
        Ok(value) => Some(value),
        Err(_) => {
            if warned().lock().insert(var.to_string()) {
                eprintln!(
                    "spangle: ignoring invalid {var}={text:?} (cannot parse as {}); \
                     using the built-in default",
                    std::any::type_name::<T>()
                );
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_knobs_fall_back_to_default_and_valid_ones_parse() {
        // A variable name no other test uses, so parallel test threads
        // cannot race this mutation.
        let var = "SPANGLE_ENV_PARSE_UNIT_TEST_MS";
        std::env::remove_var(var);
        assert_eq!(env_parse::<u64>(var), None, "unset is silently None");

        std::env::set_var(var, "abc");
        assert_eq!(env_parse::<u64>(var), None, "invalid falls back");
        // The warn-once set now contains the var; a second read still
        // returns None without panicking (and without a second warning).
        assert_eq!(env_parse::<u64>(var), None);
        assert!(warned().lock().contains(var), "must have warned");

        std::env::set_var(var, " 42 ");
        assert_eq!(env_parse::<u64>(var), Some(42), "valid (trimmed) parses");
        std::env::remove_var(var);
    }
}
