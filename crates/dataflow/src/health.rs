//! Autonomous failure detection: heartbeats, progress ticks, the
//! quarantine placement mask, and seeded retry backoff.
//!
//! The `HealthBoard` is the shared blackboard between the executor pool
//! and the scheduler's driver loop. A pool-owned *heartbeater* thread
//! stamps every executor's heartbeat (an executor-is-alive timestamp)
//! each half-interval — heartbeats model the dedicated reporter a remote
//! executor process would run, so silence means the executor is *gone*,
//! never merely busy in a long compute kernel. Workers additionally stamp
//! at their loop points (task pop, task completion) and tick *progress*
//! (a monotone per-executor counter) at chunk boundaries through
//! `cancellation_point`. The driver reads the ages back to declare an
//! executor lost after `missed_heartbeat_limit` silent intervals and a
//! task wedged after a no-progress watchdog interval, then routes into
//! the existing recovery paths (kill + lineage recompute, or a
//! speculation-style duplicate) — detection is new, recovery semantics
//! are not.
//!
//! The board also owns the *placement mask* for quarantine: an executor
//! whose recent task-failure rate crosses the threshold is drained
//! (placement and stealing skip it) and re-admitted through probation
//! with a single canary task. Everything on the board is a relaxed
//! atomic: stamping sits on the task hot path and must cost no more than
//! a TLS read and a store.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Placement states of one executor slot, kept in the board's mask.
/// `Healthy` is the only state placement targets; `Probation` admits
/// exactly one canary task (CAS to `Canary`); `Quarantined` flips to
/// `Probation` lazily once its deadline passes.
pub(crate) const STATE_HEALTHY: u8 = 0;
pub(crate) const STATE_QUARANTINED: u8 = 1;
pub(crate) const STATE_PROBATION: u8 = 2;
pub(crate) const STATE_CANARY: u8 = 3;

/// When the driver declares executors lost and tasks wedged; configured
/// through [`crate::SpangleContextBuilder`], defaults overridable with
/// `SPANGLE_DISABLE_HEALTH=1` (kill switch), `SPANGLE_HEARTBEAT_MS`, and
/// `SPANGLE_WATCHDOG_MS`.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Master switch for the whole layer: loss detection, watchdog,
    /// quarantine. Off restores announced-failures-only behavior.
    pub enabled: bool,
    /// Expected spacing of executor heartbeats; the loss threshold is
    /// `heartbeat_interval * missed_heartbeat_limit`.
    pub heartbeat_interval: Duration,
    /// Consecutive missed heartbeats before an executor with a running
    /// task is declared lost and killed through the PR 4 recovery path.
    pub missed_heartbeat_limit: u32,
    /// A running task whose executor still heartbeats but whose progress
    /// counter has not moved for this long is declared wedged and
    /// duplicated through the speculation path.
    pub watchdog_interval: Duration,
    /// Recent task-failure rate (failures / window) at or above which an
    /// executor is quarantined.
    pub quarantine_threshold: f64,
    /// Minimum recent outcomes observed on an executor before its failure
    /// rate is judged at all.
    pub quarantine_min_samples: usize,
    /// How many recent task outcomes per executor feed the failure rate.
    pub quarantine_window: usize,
    /// How long a quarantined executor is drained before probation offers
    /// it one canary task (doubled with jitter per failed canary).
    pub probation: Duration,
}

/// `SPANGLE_DISABLE_HEALTH=1` turns the whole layer off (an explicit
/// builder call still wins, it is applied after this default).
pub(crate) fn health_enabled_by_env() -> bool {
    std::env::var_os("SPANGLE_DISABLE_HEALTH").is_none_or(|v| v == "0")
}

fn env_millis(var: &str) -> Option<Duration> {
    // A malformed knob (`SPANGLE_HEARTBEAT_MS=abc`) warns once and falls
    // back to the built-in default instead of being silently ignored.
    crate::env::env_parse::<u64>(var).map(Duration::from_millis)
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: health_enabled_by_env(),
            // Heartbeats come from the pool's dedicated heartbeater, so
            // task-body length cannot trip loss detection; the margins
            // only cover scheduler-delay of the heartbeater thread itself:
            // 100 ms * 10 = 1 s loss threshold, 10 s watchdog (progress is
            // body-driven, so its margin must clear long compute kernels).
            // The `health` CI step tightens both via env.
            heartbeat_interval: env_millis("SPANGLE_HEARTBEAT_MS")
                .unwrap_or(Duration::from_millis(100)),
            missed_heartbeat_limit: 10,
            watchdog_interval: env_millis("SPANGLE_WATCHDOG_MS").unwrap_or(Duration::from_secs(10)),
            quarantine_threshold: 0.5,
            quarantine_min_samples: 5,
            quarantine_window: 20,
            probation: Duration::from_millis(250),
        }
    }
}

impl HealthConfig {
    /// Heartbeat silence past this declares a busy executor lost.
    pub(crate) fn loss_threshold(&self) -> Duration {
        self.heartbeat_interval * self.missed_heartbeat_limit.max(1)
    }
}

/// Seeded, deterministic exponential backoff with jitter, applied to every
/// retry path: task retries, executor-loss/fetch-failure resubmissions,
/// and quarantine probation. Disabled (zero delay everywhere) under
/// `SPANGLE_DISABLE_HEALTH=1` so the kill switch restores immediate-retry
/// behavior exactly.
#[derive(Clone, Copy, Debug)]
pub struct RetryBackoffConfig {
    /// Off means every delay is zero (immediate retry, the pre-health
    /// behavior).
    pub enabled: bool,
    /// Delay before the first retry; doubles per subsequent strike.
    pub base: Duration,
    /// Upper bound the doubling saturates at.
    pub cap: Duration,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for RetryBackoffConfig {
    fn default() -> Self {
        RetryBackoffConfig {
            enabled: health_enabled_by_env(),
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            seed: 0x5EED_BACC_0FF5,
        }
    }
}

impl RetryBackoffConfig {
    /// The delay before re-running `partition` of `stage` in `job` for
    /// the `strike`-th time: `base * 2^strike` saturating at `cap`, then
    /// jittered into `[1/2, 1]` of that by a hash of the identifiers —
    /// deterministic for a fixed seed, decorrelated across partitions.
    pub(crate) fn delay(
        &self,
        job: usize,
        stage: usize,
        partition: usize,
        strike: usize,
    ) -> Duration {
        if !self.enabled {
            return Duration::ZERO;
        }
        let salt = splitmix64(
            (job as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add((stage as u64) << 24)
                .wrapping_add((partition as u64) << 8)
                .wrapping_add(strike as u64),
        );
        jittered_backoff(self.base, self.cap, strike, self.seed ^ salt)
    }
}

/// SplitMix64 — the standard 64-bit finalizer; cheap, seedable, and good
/// enough to decorrelate backoff jitter across partitions.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `base * 2^strike` saturating at `cap`, jittered deterministically into
/// `[1/2, 1]` of the raw value by `seed`.
pub(crate) fn jittered_backoff(
    base: Duration,
    cap: Duration,
    strike: usize,
    seed: u64,
) -> Duration {
    let base = base.as_nanos() as u64;
    if base == 0 {
        return Duration::ZERO;
    }
    let cap = (cap.as_nanos() as u64).max(base);
    let raw = base
        .checked_shl(strike.min(32) as u32)
        .unwrap_or(u64::MAX)
        .min(cap);
    let jittered = raw / 2 + splitmix64(seed) % (raw / 2 + 1);
    Duration::from_nanos(jittered)
}

/// One executor's health slot plus the quarantine placement mask, shared
/// between the pool's workers (writers) and the driver loop (reader and
/// state machine).
pub(crate) struct HealthBoard {
    /// Board creation; heartbeat timestamps are nanos since this.
    epoch: Instant,
    /// Last heartbeat per executor, nanos since `epoch`.
    hb_nanos: Vec<AtomicU64>,
    /// Monotone chunk-boundary tick counter per executor.
    progress: Vec<AtomicU64>,
    /// Failure injection: a paused executor's stamps are suppressed, so
    /// it looks silent to the monitor while actually running.
    paused: Vec<AtomicBool>,
    /// Placement mask (`STATE_*`).
    state: Vec<AtomicU8>,
    /// When a quarantined executor's probation opens, nanos since `epoch`.
    probation_until: Vec<AtomicU64>,
}

impl HealthBoard {
    pub(crate) fn new(num_executors: usize) -> Self {
        let slot = |_| AtomicU64::new(0);
        HealthBoard {
            epoch: Instant::now(),
            hb_nanos: (0..num_executors).map(slot).collect(),
            progress: (0..num_executors).map(slot).collect(),
            paused: (0..num_executors).map(|_| AtomicBool::new(false)).collect(),
            state: (0..num_executors)
                .map(|_| AtomicU8::new(STATE_HEALTHY))
                .collect(),
            probation_until: (0..num_executors).map(slot).collect(),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Stamp "executor `e` is alive" — worker loop points and injected
    /// stall spins call this.
    pub(crate) fn stamp_heartbeat(&self, executor: usize) {
        if self.paused[executor].load(Ordering::Relaxed) {
            return;
        }
        self.hb_nanos[executor].store(self.now_nanos(), Ordering::Relaxed);
    }

    /// Stamp a chunk-boundary progress tick (which is also a heartbeat).
    pub(crate) fn stamp_progress(&self, executor: usize) {
        if self.paused[executor].load(Ordering::Relaxed) {
            return;
        }
        self.progress[executor].fetch_add(1, Ordering::Relaxed);
        self.hb_nanos[executor].store(self.now_nanos(), Ordering::Relaxed);
    }

    /// Time since executor `e` last stamped anything.
    pub(crate) fn heartbeat_age(&self, executor: usize) -> Duration {
        let last = self.hb_nanos[executor].load(Ordering::Relaxed);
        Duration::from_nanos(self.now_nanos().saturating_sub(last))
    }

    /// Current progress-tick count of executor `e`.
    pub(crate) fn progress_value(&self, executor: usize) -> u64 {
        self.progress[executor].load(Ordering::Relaxed)
    }

    /// Failure injection: suppress (or restore) all stamps from `e`.
    pub(crate) fn set_paused(&self, executor: usize, paused: bool) {
        self.paused[executor].store(paused, Ordering::Relaxed);
    }

    pub(crate) fn any_paused(&self) -> bool {
        self.paused.iter().any(|p| p.load(Ordering::Relaxed))
    }

    /// Reset slot `e` after a kill: the replacement incarnation starts
    /// with a fresh heartbeat (so it is not instantly re-declared lost)
    /// and any pause injection dies with the old incarnation.
    pub(crate) fn reset_after_kill(&self, executor: usize) {
        self.paused[executor].store(false, Ordering::Relaxed);
        self.hb_nanos[executor].store(self.now_nanos(), Ordering::Relaxed);
    }

    pub(crate) fn state(&self, executor: usize) -> u8 {
        self.state[executor].load(Ordering::Relaxed)
    }

    /// Drain `e`: placement and stealing skip it until probation.
    pub(crate) fn quarantine(&self, executor: usize, probation_in: Duration) {
        self.probation_until[executor].store(
            self.now_nanos()
                .saturating_add(probation_in.as_nanos() as u64),
            Ordering::Relaxed,
        );
        self.state[executor].store(STATE_QUARANTINED, Ordering::Relaxed);
    }

    /// Re-admit `e` as fully healthy (a canary task succeeded).
    pub(crate) fn mark_healthy(&self, executor: usize) {
        self.state[executor].store(STATE_HEALTHY, Ordering::Relaxed);
    }

    /// Executors currently excluded from placement (quarantined, on
    /// probation, or mid-canary).
    pub(crate) fn quarantined_executors(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&e| self.state(e) != STATE_HEALTHY)
            .collect()
    }

    /// Whether the quarantine canary for `e` is currently in flight.
    pub(crate) fn is_canary(&self, executor: usize) -> bool {
        self.state(executor) == STATE_CANARY
    }

    /// A canary attempt resolved without verdict (cancelled, or lost with
    /// its executor): re-open probation so the next placement can admit a
    /// fresh canary instead of leaving the slot stuck mid-trial.
    pub(crate) fn reopen_probation(&self, executor: usize) {
        let _ = self.state[executor].compare_exchange(
            STATE_CANARY,
            STATE_PROBATION,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Lazily open probation once a quarantine deadline passes.
    fn maybe_open_probation(&self, executor: usize) {
        if self.state(executor) == STATE_QUARANTINED
            && self.now_nanos() >= self.probation_until[executor].load(Ordering::Relaxed)
        {
            let _ = self.state[executor].compare_exchange(
                STATE_QUARANTINED,
                STATE_PROBATION,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Where a task placed on `home` actually goes. Healthy executors keep
    /// their placement; an executor on probation admits exactly one canary
    /// task (CAS `Probation -> Canary`); otherwise the next healthy slot
    /// takes the task. With every slot unhealthy the home placement stands
    /// — the system degrades to normal retry rather than deadlocking.
    pub(crate) fn place(&self, home: usize) -> usize {
        let n = self.state.len();
        self.maybe_open_probation(home);
        match self.state(home) {
            STATE_HEALTHY => return home,
            STATE_PROBATION
                if self.state[home]
                    .compare_exchange(
                        STATE_PROBATION,
                        STATE_CANARY,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok() =>
            {
                return home;
            }
            _ => {}
        }
        for off in 1..n {
            let e = (home + off) % n;
            if self.state(e) == STATE_HEALTHY {
                return e;
            }
        }
        home
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_saturates_and_jitters_deterministically() {
        let cfg = RetryBackoffConfig {
            enabled: true,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(16),
            seed: 42,
        };
        let d0 = cfg.delay(1, 0, 3, 0);
        let d3 = cfg.delay(1, 0, 3, 3);
        let d9 = cfg.delay(1, 0, 3, 9);
        // Jitter keeps each delay in [raw/2, raw].
        assert!(d0 >= Duration::from_millis(1) && d0 <= Duration::from_millis(2));
        assert!(d3 >= Duration::from_millis(8) && d3 <= Duration::from_millis(16));
        assert!(
            d9 >= Duration::from_millis(8) && d9 <= Duration::from_millis(16),
            "capped"
        );
        // Deterministic for a fixed seed, different across partitions.
        assert_eq!(d3, cfg.delay(1, 0, 3, 3));
        let other = cfg.delay(1, 0, 4, 3);
        assert!(other >= Duration::from_millis(8) && other <= Duration::from_millis(16));
        // Disabled means zero everywhere.
        let off = RetryBackoffConfig {
            enabled: false,
            ..cfg
        };
        assert_eq!(off.delay(1, 0, 3, 3), Duration::ZERO);
    }

    #[test]
    fn heartbeats_and_progress_stamp_and_pause() {
        let board = HealthBoard::new(2);
        board.stamp_heartbeat(0);
        assert!(board.heartbeat_age(0) < Duration::from_secs(1));
        assert_eq!(board.progress_value(0), 0);
        board.stamp_progress(0);
        assert_eq!(board.progress_value(0), 1);

        // Pausing suppresses both stamps; a kill reset lifts the pause.
        board.set_paused(1, true);
        assert!(board.any_paused());
        board.stamp_progress(1);
        assert_eq!(board.progress_value(1), 0);
        board.reset_after_kill(1);
        assert!(!board.any_paused());
        assert!(board.heartbeat_age(1) < Duration::from_secs(1));
        board.stamp_progress(1);
        assert_eq!(board.progress_value(1), 1);
    }

    #[test]
    fn quarantine_drains_placement_and_probation_admits_one_canary() {
        let board = HealthBoard::new(3);
        assert_eq!(board.place(1), 1, "healthy executors keep their home");

        board.quarantine(1, Duration::from_secs(60));
        assert_eq!(
            board.place(1),
            2,
            "quarantined home diverts to the next healthy slot"
        );
        assert_eq!(board.quarantined_executors(), vec![1]);

        // Expired probation admits exactly one canary; the next placement
        // diverts again until the canary resolves.
        board.quarantine(1, Duration::ZERO);
        assert_eq!(board.place(1), 1, "probation admits the canary");
        assert!(board.is_canary(1));
        assert_eq!(board.place(1), 2, "only one canary at a time");

        board.mark_healthy(1);
        assert_eq!(board.place(1), 1);
        assert!(board.quarantined_executors().is_empty());
    }

    #[test]
    fn all_unhealthy_placement_falls_back_to_home() {
        let board = HealthBoard::new(2);
        board.quarantine(0, Duration::from_secs(60));
        board.quarantine(1, Duration::from_secs(60));
        assert_eq!(board.place(0), 0, "no healthy slot: home placement stands");
    }

    #[test]
    fn loss_threshold_multiplies_interval_by_limit() {
        let cfg = HealthConfig {
            heartbeat_interval: Duration::from_millis(40),
            missed_heartbeat_limit: 10,
            ..HealthConfig::default()
        };
        assert_eq!(cfg.loss_threshold(), Duration::from_millis(400));
    }
}
