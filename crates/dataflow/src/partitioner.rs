//! Partitioners: how shuffle keys map to reduce partitions.
//!
//! Spangle distributes chunks by hash or range partitioning on the ChunkID
//! (§VI) and relies on *matching* partitioners to elide shuffles (the local
//! join of §VI-A). Two RDDs are co-partitioned when their partitioners have
//! equal [`PartitionerSig`]s.

use crate::Key;
use std::hash::{Hash, Hasher};

/// Structural identity of a partitioner, used to detect co-partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartitionerSig {
    /// Partitioner family ("hash", "range", "mod", custom name).
    pub kind: &'static str,
    /// Number of output partitions.
    pub num_partitions: usize,
    /// Family-specific parameter (e.g. range width); 0 when unused.
    pub param: u64,
}

/// Maps keys to partitions.
pub trait Partitioner<K: Key>: Send + Sync + 'static {
    /// Number of output partitions.
    fn num_partitions(&self) -> usize;
    /// Partition index of `key`, in `[0, num_partitions)`.
    fn partition(&self, key: &K) -> usize;
    /// Structural signature for co-partitioning checks.
    fn sig(&self) -> PartitionerSig;
}

/// Spark-style hash partitioner: `hash(key) % n`.
pub struct HashPartitioner {
    num_partitions: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        HashPartitioner { num_partitions }
    }
}

impl<K: Key> Partitioner<K> for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn partition(&self, key: &K) -> usize {
        // DefaultHasher::new() uses fixed SipHash keys, so placement is
        // deterministic across runs — required for reproducible metrics.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.num_partitions as u64) as usize
    }

    fn sig(&self) -> PartitionerSig {
        PartitionerSig {
            kind: "hash",
            num_partitions: self.num_partitions,
            param: 0,
        }
    }
}

/// Range partitioner for `u64` keys: key `k` goes to `k / range_width`,
/// clamped to the final partition.
pub struct RangePartitioner {
    num_partitions: usize,
    range_width: u64,
}

impl RangePartitioner {
    /// Partitions keys `[0, max_key]` into contiguous ranges.
    pub fn new(num_partitions: usize, max_key: u64) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        let range_width = (max_key + 1).div_ceil(num_partitions as u64).max(1);
        RangePartitioner {
            num_partitions,
            range_width,
        }
    }
}

impl Partitioner<u64> for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn partition(&self, key: &u64) -> usize {
        ((key / self.range_width) as usize).min(self.num_partitions - 1)
    }

    fn sig(&self) -> PartitionerSig {
        PartitionerSig {
            kind: "range",
            num_partitions: self.num_partitions,
            param: self.range_width,
        }
    }
}

/// Modulo partitioner for `u64` keys: `k % n`.
///
/// This is the placement the parallel-SGD chunk numbering of §VI-C (Eq. 2,
/// `Cn = nP·rID + pID`) is designed for: chunk `Cn` lands back on partition
/// `pID = Cn mod nP`, so every partition can *reverse* the equation and find
/// its own chunks without any shuffle.
pub struct ModPartitioner {
    num_partitions: usize,
}

impl ModPartitioner {
    /// Creates a modulo partitioner over `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        ModPartitioner { num_partitions }
    }
}

impl Partitioner<u64> for ModPartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn partition(&self, key: &u64) -> usize {
        (key % self.num_partitions as u64) as usize
    }

    fn sig(&self) -> PartitionerSig {
        PartitionerSig {
            kind: "mod",
            num_partitions: self.num_partitions,
            param: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for k in 0u64..1000 {
            let a = Partitioner::<u64>::partition(&p, &k);
            let b = Partitioner::<u64>::partition(&p, &k);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for k in 0u64..8000 {
            counts[Partitioner::<u64>::partition(&p, &k)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "partition {i} got {c} of 8000 keys");
        }
    }

    #[test]
    fn range_partitioner_keeps_ranges_contiguous() {
        let p = RangePartitioner::new(4, 99);
        assert_eq!(p.partition(&0), 0);
        assert_eq!(p.partition(&24), 0);
        assert_eq!(p.partition(&25), 1);
        assert_eq!(p.partition(&99), 3);
        // Keys beyond max clamp into the last partition.
        assert_eq!(p.partition(&1000), 3);
    }

    #[test]
    fn mod_partitioner_reverses_sgd_numbering() {
        // Eq. 2: Cn = nP * rID + pID  =>  Cn % nP == pID.
        let n_p = 6usize;
        let p = ModPartitioner::new(n_p);
        for p_id in 0..n_p as u64 {
            for r_id in 0..50u64 {
                let c_n = n_p as u64 * r_id + p_id;
                assert_eq!(p.partition(&c_n), p_id as usize);
            }
        }
    }

    #[test]
    fn sigs_distinguish_families_and_sizes() {
        let h4 = Partitioner::<u64>::sig(&HashPartitioner::new(4));
        let h8 = Partitioner::<u64>::sig(&HashPartitioner::new(8));
        let m4 = ModPartitioner::new(4).sig();
        assert_ne!(h4, h8);
        assert_ne!(h4, m4);
        assert_eq!(h4, Partitioner::<u64>::sig(&HashPartitioner::new(4)));
    }
}
