#![warn(missing_docs)]

//! Deterministic random generation for property-style tests.
//!
//! The workspace's property tests used to run on `proptest`; with the
//! build kept free of external crates, the same tests now loop over cases
//! drawn from this seeded SplitMix64 generator. Failures print the case's
//! seed, so any counterexample reproduces exactly with
//! `Rng::new(reported_seed)`.

use std::ops::Range;

/// Number of cases property-style tests run by default. Individual tests
/// scale this down for expensive bodies.
pub const DEFAULT_CASES: u64 = 24;

/// A SplitMix64 pseudo-random generator: tiny, fast, and with good enough
/// 64-bit avalanche behaviour for test-input generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives the per-case generator for case `case` of a test, mixing
    /// the test's own seed so different tests see different streams.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        Rng::new(test_seed ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `range` (half-open; panics when empty).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// Uniform `u64` in `range` (half-open; panics when empty).
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// Uniform `i64` in `range` (half-open; panics when empty).
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `i32` in `range` (half-open; panics when empty).
    pub fn i32_in(&mut self, range: Range<i32>) -> i32 {
        self.i64_in(range.start as i64..range.end as i64) as i32
    }

    /// Uniform `u32` in `range` (half-open; panics when empty).
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `gen`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = if len.start == len.end {
            len.start
        } else {
            self.usize_in(len)
        };
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Runs `body` for `cases` deterministic cases, printing the failing
/// case's seed on panic so it can be replayed with `Rng::new(seed)`.
pub fn run_cases(test_seed: u64, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::for_case(test_seed, case);
        let replay_seed = rng.state;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property case {case} failed; replay with Rng::new({replay_seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let u = rng.usize_in(3..9);
            assert!((3..9).contains(&u));
            let i = rng.i64_in(-50..50);
            assert!((-50..50).contains(&i));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let v = rng.vec_of(0..10, |r| r.bool());
            assert!(v.len() < 10);
        }
    }

    #[test]
    fn run_cases_executes_every_case() {
        let mut n = 0;
        run_cases(1, 16, |_| n += 1);
        assert_eq!(n, 16);
    }
}
