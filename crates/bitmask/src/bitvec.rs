//! The plain bit vector underlying every Spangle chunk.

use crate::WORD_BITS;

/// A fixed-length bit vector with one bit per array cell.
///
/// Bit `i` set means cell `i` of the chunk is *valid* (holds a real value);
/// clear means the cell is null / no-data. The vector length is the chunk
/// volume, which is independent of how many values the payload physically
/// stores.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for Bitmask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmask(len={}, ones={})", self.len, self.count_ones())
    }
}

impl Bitmask {
    /// Creates an all-zero mask of `len` bits (every cell null).
    pub fn zeros(len: usize) -> Self {
        Bitmask {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-one mask of `len` bits (every cell valid).
    pub fn ones(len: usize) -> Self {
        let mut m = Bitmask {
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Builds a mask by evaluating `f` at every bit position.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut m = Bitmask::zeros(len);
        for i in 0..len {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// Builds a mask from an iterator of set-bit positions.
    ///
    /// Positions must be `< len`; duplicates are allowed and idempotent.
    pub fn from_ones(len: usize, ones: impl IntoIterator<Item = usize>) -> Self {
        let mut m = Bitmask::zeros(len);
        for i in ones {
            m.set(i, true);
        }
        m
    }

    /// Reassembles a mask from its raw backing words — the inverse of
    /// [`Bitmask::words`], used by the spill codec to rehydrate masks
    /// without re-setting bits one at a time. `words` must hold exactly
    /// `len.div_ceil(64)` words; bits past `len` are cleared.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count mismatch for a {len}-bit mask"
        );
        let mut m = Bitmask { words, len };
        m.clear_tail();
        m
    }

    /// Serialises the mask as `len:u64 | words:u64…`, all little-endian —
    /// the wire form used by the dataflow spill codec.
    pub fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a mask written by [`Bitmask::write_le`] from the front of
    /// `buf`, returning it and the number of bytes consumed. `None` on
    /// truncated input.
    pub fn read_le(buf: &[u8]) -> Option<(Bitmask, usize)> {
        let len = usize::try_from(u64::from_le_bytes(buf.get(..8)?.try_into().unwrap())).ok()?;
        let words_bytes = len.div_ceil(WORD_BITS).checked_mul(8)?;
        let raw = buf.get(8..8 + words_bytes)?;
        let words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some((Bitmask::from_words(len, words), 8 + words_bytes))
    }

    /// Number of bits (cells) in the mask.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words. The final word's unused high bits are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Sets every bit in `[start, end)` — word-at-a-time, used to paint
    /// the contiguous runs of Subarray's virtual range mask.
    pub fn set_range(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end && end <= self.len);
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
        let (last_word, last_bit) = ((end - 1) / WORD_BITS, (end - 1) % WORD_BITS);
        let lo_mask = !0u64 << first_bit;
        let hi_mask = !0u64 >> (WORD_BITS - 1 - last_bit);
        if first_word == last_word {
            self.words[first_word] |= lo_mask & hi_mask;
        } else {
            self.words[first_word] |= lo_mask;
            for w in &mut self.words[first_word + 1..last_word] {
                *w = !0;
            }
            self.words[last_word] |= hi_mask;
        }
    }

    /// Total number of set bits (valid cells).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of valid cells, in `[0, 1]`. Empty masks report 0.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// True when no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits strictly before position `i` (exclusive rank),
    /// computed the *naive* way: re-scanning every word from the beginning.
    ///
    /// This is the access pattern Figure 8 labels "naive"; it makes a full
    /// scan of a chunk quadratic in the chunk size.
    pub fn rank_naive(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word = i / WORD_BITS;
        let bit = i % WORD_BITS;
        let mut count = 0usize;
        for w in &self.words[..word] {
            count += w.count_ones() as usize;
        }
        if bit != 0 {
            count += (self.words[word] & ((1u64 << bit) - 1)).count_ones() as usize;
        }
        count
    }

    /// Position of the `k`-th set bit (0-based), or `None` when fewer than
    /// `k + 1` bits are set.
    pub fn select(&self, k: usize) -> Option<usize> {
        let mut remaining = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                let mut w = w;
                for _ in 0..remaining {
                    w &= w - 1; // clear lowest set bit
                }
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// Iterates over the positions of the set bits in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Bitwise AND with `other`, in place. Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Bitwise OR with `other`, in place. Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch in OR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clears in `self` every bit set in `other` (`self & !other`), in place.
    pub fn and_not_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch in ANDNOT");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self & other` as a new mask.
    pub fn and(&self, other: &Bitmask) -> Bitmask {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self | other` as a new mask.
    pub fn or(&self, other: &Bitmask) -> Bitmask {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Deep size of the mask in bytes (words + header), used by the Fig. 9a
    /// memory accounting.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * std::mem::size_of::<u64>()
    }

    /// Zeroes the unused high bits of the final word so that whole-word
    /// popcounts never overcount.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit positions of a [`Bitmask`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        assert_eq!(Bitmask::zeros(130).count_ones(), 0);
        assert_eq!(Bitmask::ones(130).count_ones(), 130);
        assert_eq!(Bitmask::ones(64).count_ones(), 64);
        assert_eq!(Bitmask::ones(0).count_ones(), 0);
    }

    #[test]
    fn ones_mask_keeps_tail_bits_clear() {
        let m = Bitmask::ones(65);
        assert_eq!(m.words()[1], 1, "only the first bit of word 1 may be set");
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Bitmask::zeros(200);
        for i in (0..200).step_by(7) {
            m.set(i, true);
        }
        for i in 0..200 {
            assert_eq!(m.get(i), i % 7 == 0, "bit {i}");
        }
        m.set(0, false);
        assert!(!m.get(0));
    }

    #[test]
    fn rank_naive_matches_manual_count() {
        let m = Bitmask::from_fn(300, |i| i % 3 == 0);
        for i in 0..=300 {
            let expected = (0..i).filter(|&j| j % 3 == 0).count();
            assert_eq!(m.rank_naive(i), expected, "rank({i})");
        }
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let m = Bitmask::from_fn(500, |i| i % 5 == 2);
        for (k, pos) in m.iter_ones().enumerate() {
            assert_eq!(m.select(k), Some(pos));
            assert_eq!(m.rank_naive(pos), k);
        }
        assert_eq!(m.select(m.count_ones()), None);
    }

    #[test]
    fn iter_ones_visits_all_set_bits_in_order() {
        let positions = vec![0, 1, 63, 64, 65, 127, 128, 255];
        let m = Bitmask::from_ones(256, positions.iter().copied());
        let collected: Vec<usize> = m.iter_ones().collect();
        assert_eq!(collected, positions);
    }

    #[test]
    fn bitwise_ops_match_per_bit_semantics() {
        let a = Bitmask::from_fn(100, |i| i % 2 == 0);
        let b = Bitmask::from_fn(100, |i| i % 3 == 0);
        let and = a.and(&b);
        let or = a.or(&b);
        let mut andnot = a.clone();
        andnot.and_not_assign(&b);
        for i in 0..100 {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(andnot.get(i), a.get(i) && !b.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_panics_on_length_mismatch() {
        let mut a = Bitmask::zeros(10);
        a.and_assign(&Bitmask::zeros(11));
    }

    #[test]
    fn density_and_all_zero() {
        let m = Bitmask::from_fn(100, |i| i < 25);
        assert!((m.density() - 0.25).abs() < 1e-12);
        assert!(!m.all_zero());
        assert!(Bitmask::zeros(10).all_zero());
        assert_eq!(Bitmask::zeros(0).density(), 0.0);
    }

    #[test]
    fn set_range_matches_per_bit_sets() {
        for (start, end) in [
            (0, 0),
            (0, 1),
            (3, 61),
            (3, 64),
            (60, 130),
            (64, 128),
            (5, 199),
        ] {
            let mut fast = Bitmask::zeros(200);
            fast.set_range(start, end);
            let slow = Bitmask::from_fn(200, |i| i >= start && i < end);
            assert_eq!(fast, slow, "range [{start},{end})");
        }
    }

    #[test]
    fn mem_size_scales_with_words() {
        let small = Bitmask::zeros(64).mem_size();
        let large = Bitmask::zeros(64 * 100).mem_size();
        assert_eq!(large - small, 99 * 8);
    }
}
