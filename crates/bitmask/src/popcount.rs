//! Population-count strategies (§IV-B of the paper).
//!
//! Random access into a *sparse* chunk requires the rank of the accessed
//! position — the number of set bits before it. The paper contrasts three
//! ways of obtaining that rank, reproduced here:
//!
//! 1. re-scan from word zero on every access ([`crate::Bitmask::rank_naive`]);
//! 2. keep a cursor and count only the *delta* when access is sequential
//!    ([`DeltaCursor`]);
//! 3. pre-compute *milestones* — the running count at every 64-word block
//!    boundary — so a random access touches at most one block
//!    ([`Milestones`]). Block counting uses [`harley_seal`], the
//!    carry-save-adder popcount that the Muła–Kurz–Lemire AVX2 kernel is
//!    built on; Rust's `u64::count_ones` already lowers to the `popcnt`
//!    instruction, so this pure-Rust pair plays the role of the paper's
//!    JNI+AVX2 path without the FFI boundary.

use crate::bitvec::Bitmask;
use crate::{BLOCK_WORDS, WORD_BITS};

/// Harley–Seal popcount over a word slice.
///
/// Processes 8 words at a time through a carry-save adder tree, touching the
/// scalar popcount only once per 8 words; falls back to per-word popcount
/// for the tail. Returns the total number of set bits.
pub fn harley_seal(words: &[u64]) -> usize {
    #[inline(always)]
    fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
        let u = a ^ b;
        (u ^ c, (a & b) | (u & c))
    }

    let mut total: u64 = 0;
    let mut ones: u64 = 0;
    let mut twos: u64 = 0;
    let mut fours: u64 = 0;

    let chunks = words.chunks_exact(8);
    let remainder = chunks.remainder();
    for c in chunks {
        let (t0, tw0) = csa(ones, c[0], c[1]);
        let (t1, tw1) = csa(t0, c[2], c[3]);
        let (t2, tw2) = csa(t1, c[4], c[5]);
        let (t3, tw3) = csa(t2, c[6], c[7]);
        ones = t3;
        let (tw_a, f_a) = csa(twos, tw0, tw1);
        let (tw_b, f_b) = csa(tw_a, tw2, tw3);
        twos = tw_b;
        let (f, eights) = csa(fours, f_a, f_b);
        fours = f;
        total += 8 * eights.count_ones() as u64;
    }
    total +=
        4 * fours.count_ones() as u64 + 2 * twos.count_ones() as u64 + ones.count_ones() as u64;
    for &w in remainder {
        total += w.count_ones() as u64;
    }
    total as usize
}

/// Sequential-access rank cursor implementing the paper's *delta count*.
///
/// Operators with a sequential access pattern (Filter, Aggregator — anything
/// that reads every cell in order) never need a full rank: the rank at the
/// next position is the rank at the current position plus the number of set
/// bits in between. The cursor may only move forward.
pub struct DeltaCursor<'a> {
    mask: &'a Bitmask,
    /// Bit position the cursor has counted up to (exclusive).
    pos: usize,
    /// Number of set bits in `[0, pos)`.
    count: usize,
}

impl<'a> DeltaCursor<'a> {
    /// Creates a cursor at position 0 of `mask`.
    pub fn new(mask: &'a Bitmask) -> Self {
        DeltaCursor {
            mask,
            pos: 0,
            count: 0,
        }
    }

    /// Advances to `pos` and returns the exclusive rank at `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is smaller than a previously requested position
    /// (the delta count is only defined for forward movement) or greater
    /// than the mask length.
    pub fn rank(&mut self, pos: usize) -> usize {
        assert!(
            pos >= self.pos,
            "DeltaCursor moved backwards: {} -> {pos}",
            self.pos
        );
        assert!(pos <= self.mask.len());
        // Count bits in [self.pos, pos) word by word.
        let words = self.mask.words();
        let mut cur = self.pos;
        while cur < pos {
            let wi = cur / WORD_BITS;
            let lo = cur % WORD_BITS;
            let word_end = ((wi + 1) * WORD_BITS).min(pos);
            let hi = word_end - wi * WORD_BITS; // in (0, 64]
            let mut w = words[wi] >> lo;
            let width = hi - lo;
            if width < WORD_BITS {
                w &= (1u64 << width) - 1;
            }
            self.count += w.count_ones() as usize;
            cur = word_end;
        }
        self.pos = pos;
        self.count
    }

    /// Current position of the cursor.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Milestone rank directory: the paper's "opt" random-access strategy.
///
/// Stores the running population count at every [`BLOCK_WORDS`]-word
/// boundary, so a random rank query scans at most one 64-word block (counted
/// with [`harley_seal`]) instead of the whole prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Milestones {
    /// `block_counts[b]` = number of set bits in words `[0, b * BLOCK_WORDS)`.
    block_counts: Vec<usize>,
}

impl Milestones {
    /// Builds the directory for `mask` in a single pass.
    pub fn build(mask: &Bitmask) -> Self {
        let words = mask.words();
        let num_blocks = words.len().div_ceil(BLOCK_WORDS);
        let mut block_counts = Vec::with_capacity(num_blocks + 1);
        block_counts.push(0);
        let mut running = 0usize;
        for b in 0..num_blocks {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(words.len());
            running += harley_seal(&words[start..end]);
            block_counts.push(running);
        }
        Milestones { block_counts }
    }

    /// Exclusive rank of `pos` in `mask` using the directory.
    ///
    /// `mask` must be the mask the directory was built from.
    pub fn rank(&self, mask: &Bitmask, pos: usize) -> usize {
        debug_assert!(pos <= mask.len());
        let words = mask.words();
        let word = pos / WORD_BITS;
        let bit = pos % WORD_BITS;
        let block = word / BLOCK_WORDS;
        let mut count = self.block_counts[block];
        // Whole words inside the block before `word`.
        count += harley_seal(&words[block * BLOCK_WORDS..word]);
        if bit != 0 {
            count += (words[word] & ((1u64 << bit) - 1)).count_ones() as usize;
        }
        count
    }

    /// Total number of set bits recorded by the directory.
    pub fn total(&self) -> usize {
        *self.block_counts.last().unwrap_or(&0)
    }

    /// Deep size in bytes, charged to chunk memory accounting.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.block_counts.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_mask(len: usize) -> Bitmask {
        Bitmask::from_fn(len, |i| (i * 2654435761) % 7 < 2)
    }

    #[test]
    fn harley_seal_matches_scalar_popcount() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 200] {
            let words: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .collect();
            let scalar: usize = words.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(harley_seal(&words), scalar, "n={n}");
        }
    }

    #[test]
    fn delta_cursor_matches_naive_rank() {
        let m = pattern_mask(5000);
        let mut cursor = DeltaCursor::new(&m);
        for pos in (0..=5000).step_by(37) {
            assert_eq!(cursor.rank(pos), m.rank_naive(pos), "pos={pos}");
        }
    }

    #[test]
    fn delta_cursor_exact_steps() {
        let m = pattern_mask(256);
        let mut cursor = DeltaCursor::new(&m);
        for pos in 0..=256 {
            assert_eq!(cursor.rank(pos), m.rank_naive(pos), "pos={pos}");
        }
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn delta_cursor_rejects_backward_movement() {
        let m = pattern_mask(128);
        let mut cursor = DeltaCursor::new(&m);
        cursor.rank(100);
        cursor.rank(50);
    }

    #[test]
    fn milestones_match_naive_rank_across_blocks() {
        // > 2 blocks: 3 * 64 words * 64 bits = 12288 bits.
        let m = pattern_mask(3 * BLOCK_WORDS * WORD_BITS + 17);
        let ms = Milestones::build(&m);
        for pos in (0..=m.len()).step_by(97) {
            assert_eq!(ms.rank(&m, pos), m.rank_naive(pos), "pos={pos}");
        }
        assert_eq!(ms.total(), m.count_ones());
    }

    #[test]
    fn milestones_on_tiny_and_empty_masks() {
        let empty = Bitmask::zeros(0);
        let ms = Milestones::build(&empty);
        assert_eq!(ms.total(), 0);
        assert_eq!(ms.rank(&empty, 0), 0);

        let tiny = Bitmask::ones(5);
        let ms = Milestones::build(&tiny);
        assert_eq!(ms.rank(&tiny, 3), 3);
        assert_eq!(ms.total(), 5);
    }
}
