//! Two-level hierarchical bitmask for *super-sparse* chunks (§IV-A).
//!
//! When a chunk has only a handful of valid cells the flat bitmask itself
//! dominates the chunk size. The hierarchical mask stores an *upper* bitmask
//! with one bit per lower-level word; a clear upper bit means the whole
//! 64-bit lower word is zero and is not stored at all. Only non-zero lower
//! words are kept, densely packed.

use crate::bitvec::Bitmask;
use crate::WORD_BITS;

/// Compressed two-level bitmask.
///
/// Logically equivalent to a [`Bitmask`] of the same length, but words that
/// are entirely zero are elided; the upper mask records which lower words
/// survive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchicalBitmask {
    /// One bit per lower-level word; set iff the word is non-zero.
    upper: Bitmask,
    /// The non-zero lower words, in word-index order.
    lower: Vec<u64>,
    /// Logical number of bits.
    len: usize,
}

impl HierarchicalBitmask {
    /// Compresses a flat mask into hierarchical form.
    pub fn compress(mask: &Bitmask) -> Self {
        let words = mask.words();
        let mut upper = Bitmask::zeros(words.len());
        let mut lower = Vec::new();
        for (i, &w) in words.iter().enumerate() {
            if w != 0 {
                upper.set(i, true);
                lower.push(w);
            }
        }
        HierarchicalBitmask {
            upper,
            lower,
            len: mask.len(),
        }
    }

    /// Expands back to a flat mask.
    pub fn decompress(&self) -> Bitmask {
        let mut out = Bitmask::zeros(self.len);
        for (slot, word_idx) in self.upper.iter_ones().enumerate() {
            let w = self.lower[slot];
            let base = word_idx * WORD_BITS;
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.set(base + b, true);
            }
        }
        out
    }

    /// Logical number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads logical bit `i`.
    ///
    /// A clear upper bit answers immediately; otherwise the surviving lower
    /// word is located by ranking the upper mask.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word_idx = i / WORD_BITS;
        if !self.upper.get(word_idx) {
            return false;
        }
        let slot = self.upper.rank_naive(word_idx);
        (self.lower[slot] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Exclusive rank of position `i`: set bits in `[0, i)`.
    pub fn rank(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word_idx = i / WORD_BITS;
        let bit = i % WORD_BITS;
        let mut count = 0usize;
        for (slot, wi) in self.upper.iter_ones().enumerate() {
            if wi < word_idx {
                count += self.lower[slot].count_ones() as usize;
            } else if wi == word_idx && bit != 0 {
                count += (self.lower[slot] & ((1u64 << bit) - 1)).count_ones() as usize;
                break;
            } else {
                break;
            }
        }
        count
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.lower.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the positions of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.upper
            .iter_ones()
            .enumerate()
            .flat_map(move |(slot, word_idx)| {
                let w = self.lower[slot];
                OneBits {
                    word: w,
                    base: word_idx * WORD_BITS,
                }
            })
    }

    /// Deep size in bytes. For genuinely super-sparse data this is far below
    /// the flat mask's `len / 8` bytes.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.upper.mem_size()
            + self.lower.len() * std::mem::size_of::<u64>()
    }
}

struct OneBits {
    word: u64,
    base: usize,
}

impl Iterator for OneBits {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_mask(len: usize, every: usize) -> Bitmask {
        Bitmask::from_fn(len, |i| i % every == 0)
    }

    #[test]
    fn compress_decompress_roundtrip() {
        for every in [1, 3, 64, 500, 4096] {
            let m = sparse_mask(10_000, every);
            let h = HierarchicalBitmask::compress(&m);
            assert_eq!(h.decompress(), m, "every={every}");
            assert_eq!(h.count_ones(), m.count_ones());
        }
    }

    #[test]
    fn get_matches_flat_mask() {
        let m = sparse_mask(2_000, 131);
        let h = HierarchicalBitmask::compress(&m);
        for i in 0..2_000 {
            assert_eq!(h.get(i), m.get(i), "bit {i}");
        }
    }

    #[test]
    fn rank_matches_flat_mask() {
        let m = sparse_mask(3_000, 97);
        let h = HierarchicalBitmask::compress(&m);
        for i in (0..=3_000).step_by(53) {
            assert_eq!(h.rank(i), m.rank_naive(i), "pos {i}");
        }
    }

    #[test]
    fn iter_ones_matches_flat_mask() {
        let m = sparse_mask(5_000, 211);
        let h = HierarchicalBitmask::compress(&m);
        let flat: Vec<usize> = m.iter_ones().collect();
        let hier: Vec<usize> = h.iter_ones().collect();
        assert_eq!(flat, hier);
    }

    #[test]
    fn super_sparse_mask_is_smaller_than_flat() {
        // One valid cell per 4096: the flat mask stores every word, the
        // hierarchical one stores ~1/64 of them.
        let m = sparse_mask(1 << 20, 4096);
        let h = HierarchicalBitmask::compress(&m);
        assert!(
            h.mem_size() * 4 < m.mem_size(),
            "hierarchical {} vs flat {}",
            h.mem_size(),
            m.mem_size()
        );
    }

    #[test]
    fn empty_and_full_masks() {
        let empty = Bitmask::zeros(1000);
        let h = HierarchicalBitmask::compress(&empty);
        assert_eq!(h.count_ones(), 0);
        assert_eq!(h.decompress(), empty);

        let full = Bitmask::ones(1000);
        let h = HierarchicalBitmask::compress(&full);
        assert_eq!(h.count_ones(), 1000);
        assert_eq!(h.decompress(), full);
    }
}
