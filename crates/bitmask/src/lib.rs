#![warn(missing_docs)]

//! Bitmask data structures and population-count strategies for Spangle.
//!
//! Spangle (ICDE 2021, §IV) represents the validity of array cells with a
//! *bitmask*: one bit per cell, set when the cell holds a real value and
//! clear when the cell is null (no-data). On top of the plain bit vector
//! this crate provides the three access disciplines the paper evaluates in
//! Figure 8:
//!
//! * **naive** — every random access ranks the mask by scanning from word 0
//!   ([`Bitmask::rank_naive`]);
//! * **sequential / delta count** — a cursor that advances monotonically and
//!   only counts bits between the previous and the current position
//!   ([`DeltaCursor`]);
//! * **opt** — a milestone directory storing the running population count of
//!   every 64-word block, combined with a Harley–Seal style block popcount,
//!   standing in for the paper's AVX2+JNI path ([`Milestones`],
//!   [`harley_seal`]).
//!
//! For *super-sparse* chunks the paper compresses the mask itself with a
//! two-level [`HierarchicalBitmask`]; for static matrices it switches to an
//! [`OffsetArray`] (a one-dimensional COO) whenever that is smaller than the
//! mask (§V-A4).

pub mod bitvec;
pub mod hierarchical;
pub mod offsets;
pub mod popcount;

pub use bitvec::Bitmask;
pub use hierarchical::HierarchicalBitmask;
pub use offsets::{choose_validity_repr, OffsetArray, ValidityRepr};
pub use popcount::{harley_seal, DeltaCursor, Milestones};

/// Number of bits per machine word used by all mask structures.
pub const WORD_BITS: usize = 64;

/// Number of words per milestone / hierarchical block (the paper's "64
/// words" granularity, i.e. 4096 cells).
pub const BLOCK_WORDS: usize = 64;
