//! Offset-array validity representation and the bitmask/offset choice rule.
//!
//! For matrix computation the paper (§V-A4) keeps an alternative to the
//! bitmask: an *offset array*, "similar to the coordinate list format (COO)
//! but represent\[ing\] multidimensional coordinates as one-dimensional
//! coordinates". The conversion from a bitmask to an offset array happens
//! only when the mask would be larger than the offsets — i.e. for static,
//! hyper-sparse matrices such as training data.

use crate::bitvec::Bitmask;

/// Sorted one-dimensional offsets of the valid cells of a chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OffsetArray {
    /// Strictly increasing local cell offsets.
    offsets: Vec<u32>,
    /// Logical chunk volume the offsets index into.
    len: usize,
}

impl OffsetArray {
    /// Builds an offset array from the set bits of `mask`.
    pub fn from_mask(mask: &Bitmask) -> Self {
        OffsetArray {
            offsets: mask.iter_ones().map(|i| i as u32).collect(),
            len: mask.len(),
        }
    }

    /// Builds from pre-sorted offsets. Panics if unsorted, duplicated, or
    /// out of range.
    pub fn from_sorted(len: usize, offsets: Vec<u32>) -> Self {
        for pair in offsets.windows(2) {
            assert!(pair[0] < pair[1], "offsets must be strictly increasing");
        }
        if let Some(&last) = offsets.last() {
            assert!((last as usize) < len, "offset {last} out of range {len}");
        }
        OffsetArray { offsets, len }
    }

    /// Reconstructs the equivalent bitmask.
    pub fn to_mask(&self) -> Bitmask {
        Bitmask::from_ones(self.len, self.offsets.iter().map(|&o| o as usize))
    }

    /// Logical chunk volume.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk volume is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid cells.
    pub fn count_ones(&self) -> usize {
        self.offsets.len()
    }

    /// The sorted valid-cell offsets.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Whether local offset `i` is valid (binary search).
    pub fn get(&self, i: usize) -> bool {
        self.offsets.binary_search(&(i as u32)).is_ok()
    }

    /// Exclusive rank of `i`: the payload slot of the cell at offset `i`
    /// when valid, or the number of valid cells before `i` otherwise.
    pub fn rank(&self, i: usize) -> usize {
        match self.offsets.binary_search(&(i as u32)) {
            Ok(slot) | Err(slot) => slot,
        }
    }

    /// Deep size in bytes.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

/// Which validity representation a static chunk should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidityRepr {
    /// Keep the bitmask (dynamic data, or dense enough that the mask wins).
    Bitmask,
    /// Switch to the offset array (static, hyper-sparse data).
    Offsets,
}

/// The paper's conversion rule: use offsets only when they are smaller than
/// the mask. A mask costs `volume / 8` bytes; offsets cost `4 * valid`.
pub fn choose_validity_repr(volume: usize, valid_cells: usize) -> ValidityRepr {
    let mask_bytes = volume.div_ceil(8);
    let offset_bytes = valid_cells * std::mem::size_of::<u32>();
    if offset_bytes < mask_bytes {
        ValidityRepr::Offsets
    } else {
        ValidityRepr::Bitmask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_offset_roundtrip() {
        let m = Bitmask::from_fn(1000, |i| i % 37 == 5);
        let o = OffsetArray::from_mask(&m);
        assert_eq!(o.to_mask(), m);
        assert_eq!(o.count_ones(), m.count_ones());
    }

    #[test]
    fn get_and_rank_match_mask() {
        let m = Bitmask::from_fn(512, |i| i % 9 == 0);
        let o = OffsetArray::from_mask(&m);
        for i in 0..512 {
            assert_eq!(o.get(i), m.get(i), "get({i})");
            assert_eq!(o.rank(i), m.rank_naive(i), "rank({i})");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_unsorted() {
        OffsetArray::from_sorted(10, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_sorted_rejects_out_of_range() {
        OffsetArray::from_sorted(10, vec![10]);
    }

    #[test]
    fn conversion_rule_prefers_offsets_when_hyper_sparse() {
        // volume 32768 cells → mask = 4096 bytes. 100 valid cells → 400
        // bytes of offsets: offsets win.
        assert_eq!(choose_validity_repr(32768, 100), ValidityRepr::Offsets);
        // 2000 valid cells → 8000 bytes of offsets: mask wins.
        assert_eq!(choose_validity_repr(32768, 2000), ValidityRepr::Bitmask);
        // Break-even: offsets == mask size keeps the mask.
        assert_eq!(choose_validity_repr(32, 1), ValidityRepr::Bitmask);
    }
}
