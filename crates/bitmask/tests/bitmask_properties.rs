//! Property tests for the bitmask substrate: rank/select duality, boolean
//! algebra, and representation round-trips.

use spangle_bitmask::{
    choose_validity_repr, harley_seal, Bitmask, DeltaCursor, HierarchicalBitmask, Milestones,
    OffsetArray, ValidityRepr,
};
use spangle_testkit::run_cases;

const CASES: u64 = 64;

#[test]
fn select_is_the_inverse_of_rank() {
    run_cases(0xB177_0001, CASES, |rng| {
        let bits = rng.vec_of(1..4000, |r| r.bool());
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        for (k, pos) in mask.iter_ones().enumerate() {
            assert_eq!(mask.select(k), Some(pos));
            assert_eq!(mask.rank_naive(pos), k);
            assert!(mask.get(pos));
        }
        assert_eq!(mask.select(mask.count_ones()), None);
    });
}

#[test]
fn boolean_algebra_holds() {
    run_cases(0xB177_0002, CASES, |rng| {
        let a_bits = rng.vec_of(1..1000, |r| r.bool());
        let b_seed = rng.next_u64();
        let n = a_bits.len();
        let a = Bitmask::from_fn(n, |i| a_bits[i]);
        let b = Bitmask::from_fn(n, |i| (i as u64).wrapping_mul(b_seed | 1).is_multiple_of(3));
        // De Morgan-ish identities expressible without complement:
        // |A∧B| + |A∨B| == |A| + |B|.
        assert_eq!(
            a.and(&b).count_ones() + a.or(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // AND/OR are commutative and idempotent.
        assert_eq!(a.and(&b), b.and(&a));
        assert_eq!(a.or(&b), b.or(&a));
        assert_eq!(a.and(&a), a.clone());
        assert_eq!(a.or(&a), a.clone());
        // ANDNOT partitions A.
        let mut only_a = a.clone();
        only_a.and_not_assign(&b);
        assert_eq!(only_a.count_ones() + a.and(&b).count_ones(), a.count_ones());
    });
}

#[test]
fn all_rank_structures_agree() {
    run_cases(0xB177_0003, CASES, |rng| {
        let bits = rng.vec_of(1..6000, |r| r.bool());
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        let milestones = Milestones::build(&mask);
        let hier = HierarchicalBitmask::compress(&mask);
        let offsets = OffsetArray::from_mask(&mask);
        let mut cursor = DeltaCursor::new(&mask);
        for pos in (0..=bits.len()).step_by(37) {
            let expected = mask.rank_naive(pos);
            assert_eq!(milestones.rank(&mask, pos), expected);
            assert_eq!(hier.rank(pos), expected);
            assert_eq!(offsets.rank(pos), expected);
            assert_eq!(cursor.rank(pos), expected);
        }
        assert_eq!(milestones.total(), mask.count_ones());
        assert_eq!(harley_seal(mask.words()), mask.count_ones());
    });
}

#[test]
fn hierarchical_and_offset_roundtrips() {
    run_cases(0xB177_0004, CASES, |rng| {
        let bits = rng.vec_of(1..3000, |r| r.bool());
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        assert_eq!(HierarchicalBitmask::compress(&mask).decompress(), mask);
        assert_eq!(OffsetArray::from_mask(&mask).to_mask(), mask);
    });
}

#[test]
fn set_range_equals_per_bit_sets() {
    run_cases(0xB177_0005, CASES, |rng| {
        let len = rng.usize_in(1..2000);
        let a = rng.usize_in(0..2000);
        let b = rng.usize_in(0..2000);
        let (start, end) = (a.min(b).min(len), a.max(b).min(len));
        let mut fast = Bitmask::zeros(len);
        fast.set_range(start, end);
        let slow = Bitmask::from_fn(len, |i| i >= start && i < end);
        assert_eq!(fast, slow);
    });
}

#[test]
fn repr_choice_is_consistent_with_actual_sizes() {
    run_cases(0xB177_0006, CASES, |rng| {
        let volume = rng.usize_in(64..100_000);
        let valid_frac = rng.f64_unit();
        let valid = ((volume as f64) * valid_frac) as usize;
        let repr = choose_validity_repr(volume, valid);
        let mask_bytes = volume.div_ceil(8);
        let offset_bytes = valid * 4;
        match repr {
            ValidityRepr::Offsets => assert!(offset_bytes < mask_bytes),
            ValidityRepr::Bitmask => assert!(offset_bytes >= mask_bytes),
        }
    });
}
