//! Property tests for the bitmask substrate: rank/select duality, boolean
//! algebra, and representation round-trips.

use proptest::prelude::*;
use spangle_bitmask::{
    choose_validity_repr, harley_seal, Bitmask, DeltaCursor, HierarchicalBitmask, Milestones,
    OffsetArray, ValidityRepr,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_is_the_inverse_of_rank(bits in proptest::collection::vec(any::<bool>(), 1..4000)) {
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        for (k, pos) in mask.iter_ones().enumerate() {
            prop_assert_eq!(mask.select(k), Some(pos));
            prop_assert_eq!(mask.rank_naive(pos), k);
            prop_assert!(mask.get(pos));
        }
        prop_assert_eq!(mask.select(mask.count_ones()), None);
    }

    #[test]
    fn boolean_algebra_holds(
        a_bits in proptest::collection::vec(any::<bool>(), 1..1000),
        b_seed in any::<u64>(),
    ) {
        let n = a_bits.len();
        let a = Bitmask::from_fn(n, |i| a_bits[i]);
        let b = Bitmask::from_fn(n, |i| (i as u64).wrapping_mul(b_seed | 1) % 3 == 0);
        // De Morgan-ish identities expressible without complement:
        // |A∧B| + |A∨B| == |A| + |B|.
        prop_assert_eq!(
            a.and(&b).count_ones() + a.or(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // AND/OR are commutative and idempotent.
        prop_assert_eq!(a.and(&b), b.and(&a));
        prop_assert_eq!(a.or(&b), b.or(&a));
        prop_assert_eq!(a.and(&a), a.clone());
        prop_assert_eq!(a.or(&a), a.clone());
        // ANDNOT partitions A.
        let mut only_a = a.clone();
        only_a.and_not_assign(&b);
        prop_assert_eq!(only_a.count_ones() + a.and(&b).count_ones(), a.count_ones());
    }

    #[test]
    fn all_rank_structures_agree(bits in proptest::collection::vec(any::<bool>(), 1..6000)) {
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        let milestones = Milestones::build(&mask);
        let hier = HierarchicalBitmask::compress(&mask);
        let offsets = OffsetArray::from_mask(&mask);
        let mut cursor = DeltaCursor::new(&mask);
        for pos in (0..=bits.len()).step_by(37) {
            let expected = mask.rank_naive(pos);
            prop_assert_eq!(milestones.rank(&mask, pos), expected);
            prop_assert_eq!(hier.rank(pos), expected);
            prop_assert_eq!(offsets.rank(pos), expected);
            prop_assert_eq!(cursor.rank(pos), expected);
        }
        prop_assert_eq!(milestones.total(), mask.count_ones());
        prop_assert_eq!(harley_seal(mask.words()), mask.count_ones());
    }

    #[test]
    fn hierarchical_and_offset_roundtrips(bits in proptest::collection::vec(any::<bool>(), 1..3000)) {
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        prop_assert_eq!(HierarchicalBitmask::compress(&mask).decompress(), mask.clone());
        prop_assert_eq!(OffsetArray::from_mask(&mask).to_mask(), mask);
    }

    #[test]
    fn set_range_equals_per_bit_sets(
        len in 1usize..2000,
        a in 0usize..2000,
        b in 0usize..2000,
    ) {
        let (start, end) = (a.min(b).min(len), a.max(b).min(len));
        let mut fast = Bitmask::zeros(len);
        fast.set_range(start, end);
        let slow = Bitmask::from_fn(len, |i| i >= start && i < end);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn repr_choice_is_consistent_with_actual_sizes(
        volume in 64usize..100_000,
        valid_frac in 0.0f64..1.0,
    ) {
        let valid = ((volume as f64) * valid_frac) as usize;
        let repr = choose_validity_repr(volume, valid);
        let mask_bytes = volume.div_ceil(8);
        let offset_bytes = valid * 4;
        match repr {
            ValidityRepr::Offsets => prop_assert!(offset_bytes < mask_bytes),
            ValidityRepr::Bitmask => prop_assert!(offset_bytes >= mask_bytes),
        }
    }
}
