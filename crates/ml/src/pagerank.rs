//! Customised PageRank (paper §VI-B).
//!
//! The transition matrix `A` (column `j` = `1/outdeg(j)` on `j`'s
//! out-neighbours) is decomposed into `A = A' diag(w)`: a 0/1 structure
//! matrix `A'` (entry `(i, j)` = 1 iff edge `j → i`) and the vector
//! `w = 1/outdeg`. Because `A'` is binary it is stored as *bitmask-only
//! adjacency blocks* — one bit per potential edge, hierarchical when the
//! block is super-sparse — and each iteration computes
//!
//! ```text
//! p ← α · A'(w ∘ p) + (1 − α)/n
//! ```
//!
//! where `w ∘ p` is a cheap driver-side Hadamard product and `A'(·)` is a
//! broadcast mask-matvec that never moves a block.

use crate::graph::Graph;
use spangle_bitmask::{Bitmask, HierarchicalBitmask};
use spangle_dataflow::{
    JobError, MemSize, ModPartitioner, PairRdd, Partitioner, PartitionerSig, Rdd, SpangleContext,
};
use spangle_linalg::DenseVector;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Routes a block id to the partition that owns its block *row*
/// (`(id % grid) % n`). Laying the adjacency out this way at build time
/// co-locates every block that contributes to one output row segment, so
/// the per-iteration reduce in [`AdjacencyMatrix::matvec`] — keyed by
/// block row — is provably local and the planner elides its shuffle.
struct RowBlockPartitioner {
    grid: u64,
    num_partitions: usize,
}

impl Partitioner<u64> for RowBlockPartitioner {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn partition(&self, key: &u64) -> usize {
        ((key % self.grid) % self.num_partitions as u64) as usize
    }

    fn sig(&self) -> PartitionerSig {
        PartitionerSig {
            kind: "row-block",
            num_partitions: self.num_partitions,
            param: self.grid,
        }
    }
}

/// One adjacency block: pure structure, no payload.
#[derive(Clone, Debug)]
pub enum AdjBlock {
    /// Flat bitmask (sparse blocks).
    Flat(Bitmask),
    /// Two-level mask (super-sparse blocks).
    Hier(HierarchicalBitmask),
}

impl AdjBlock {
    fn from_mask(mask: Bitmask, super_sparse: bool) -> Self {
        if super_sparse {
            AdjBlock::Hier(HierarchicalBitmask::compress(&mask))
        } else {
            AdjBlock::Flat(mask)
        }
    }

    /// Iterates set bits (edges) as local offsets.
    fn for_each_edge(&self, mut f: impl FnMut(usize)) {
        match self {
            AdjBlock::Flat(m) => {
                for i in m.iter_ones() {
                    f(i)
                }
            }
            AdjBlock::Hier(m) => {
                for i in m.iter_ones() {
                    f(i)
                }
            }
        }
    }

    /// Number of edges in the block.
    pub fn num_edges(&self) -> usize {
        match self {
            AdjBlock::Flat(m) => m.count_ones(),
            AdjBlock::Hier(m) => m.count_ones(),
        }
    }
}

impl MemSize for AdjBlock {
    fn mem_size(&self) -> usize {
        match self {
            AdjBlock::Flat(m) => m.mem_size(),
            AdjBlock::Hier(m) => m.mem_size(),
        }
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        // Both variants travel in flat form; `compress` is deterministic,
        // so the hierarchical layout is rebuilt identically on decode.
        match self {
            AdjBlock::Flat(m) => {
                out.push(0);
                m.write_le(out);
            }
            AdjBlock::Hier(m) => {
                out.push(1);
                m.decompress().write_le(out);
            }
        }
    }

    fn spill_decode(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Self> {
        let tag = input.u8()?;
        let (mask, used) = Bitmask::read_le(input.rest())?;
        input.skip(used)?;
        match tag {
            0 => Some(AdjBlock::Flat(mask)),
            1 => Some(AdjBlock::Hier(HierarchicalBitmask::compress(&mask))),
            _ => None,
        }
    }
}

/// The structure matrix `A'` as bitmask-only blocks: entry `(i, j)` = 1
/// iff there is an edge `j → i` ("rows are destination vertices, columns
/// are source vertices").
pub struct AdjacencyMatrix {
    num_vertices: usize,
    block_size: usize,
    grid: usize,
    rdd: Rdd<(u64, AdjBlock)>,
}

impl AdjacencyMatrix {
    /// Builds the blocks from a graph's edges through one shuffle
    /// (edge → owning block), storing each block as a flat or hierarchical
    /// bitmask depending on its density. `super_sparse` forces the
    /// hierarchical mode (the setting used for LiveJournal in §VII-C).
    pub fn from_graph(
        graph: &Graph,
        block_size: usize,
        super_sparse: bool,
    ) -> Result<Self, JobError> {
        let n = graph.num_vertices();
        let grid = n.div_ceil(block_size);
        let num_partitions = graph.edges().num_partitions().max(1);

        // Key each edge by its block id; rows (destinations) vary fastest,
        // matching the ArrayRDD mapper convention.
        let bs = block_size as u64;
        let grid64 = grid as u64;
        let keyed = graph.edges().map(move |(src, dst)| {
            let (gr, gc) = (dst / bs, src / bs);
            let block_id = gr + gc * grid64;
            let local = (dst % bs) + (src % bs) * bs;
            (block_id, local as u32)
        });
        // Place every block on the partition of its block row, so each
        // iteration's partial-segment reduce (`matvec`) is shuffle-free.
        let partitioner = Arc::new(RowBlockPartitioner {
            grid: grid64,
            num_partitions,
        });
        let sig = partitioner.sig();
        let grouped = keyed.group_by_key(partitioner);
        let n_copy = n;
        let rdd = grouped.map(move |(block_id, locals)| {
            let gr = (block_id % grid64) as usize;
            let gc = (block_id / grid64) as usize;
            let rows = block_size.min(n_copy - gr * block_size);
            let cols = block_size.min(n_copy - gc * block_size);
            // Locals were computed with the nominal block size; re-map to
            // the clipped extent.
            let mut mask = Bitmask::zeros(rows * cols);
            for l in &locals {
                let r = (*l as usize) % block_size;
                let c = (*l as usize) / block_size;
                mask.set(r + c * rows, true);
            }
            (block_id, AdjBlock::from_mask(mask, super_sparse))
        });
        let rdd = rdd.assert_partitioned(sig);
        rdd.persist();
        Ok(AdjacencyMatrix {
            num_vertices: n,
            block_size,
            grid,
            rdd,
        })
    }

    /// Number of vertices (`A'` is `n × n`).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The block RDD.
    pub fn rdd(&self) -> &Rdd<(u64, AdjBlock)> {
        &self.rdd
    }

    /// Total bytes of mask storage — the memory the bitmask representation
    /// saves over an 8-bytes-per-edge payload matrix.
    pub fn mem_bytes(&self) -> Result<usize, JobError> {
        self.rdd
            .aggregate(0usize, |acc, (_, b)| acc + b.mem_size(), |a, b| a + b)
    }

    /// `y = A'·q` with a broadcast vector: per block, every set bit
    /// `(i, j)` contributes `q[j]` to `y[i]`; partial row segments reduce
    /// per block row.
    pub fn matvec(&self, q: &[f64]) -> Result<Vec<f64>, JobError> {
        assert_eq!(q.len(), self.num_vertices, "dimension mismatch in A'q");
        let ctx = self.context();
        let bc = ctx.broadcast(q.to_vec());
        let bs = self.block_size;
        let grid = self.grid as u64;
        let n = self.num_vertices;
        let partials = self.rdd.map(move |(block_id, block)| {
            let gr = (block_id % grid) as usize;
            let gc = (block_id / grid) as usize;
            let rows = bs.min(n - gr * bs);
            let col_base = gc * bs;
            let q = bc.value();
            let mut acc = vec![0.0f64; rows];
            block.for_each_edge(|local| {
                let i = local % rows;
                let j = local / rows;
                acc[i] += q[col_base + j];
            });
            (block_id % grid, acc)
        });
        let n_parts = self.rdd.num_partitions();
        // The build-time layout put every block of block row `gr` on
        // partition `gr % n_parts`, so the re-keyed partials already sit
        // exactly where a modulo reduce wants them; assert that invariant
        // and the planner turns the per-iteration shuffle into a narrow
        // pass-through.
        let partials =
            partials.assert_partitioned(Partitioner::<u64>::sig(&ModPartitioner::new(n_parts)));
        let reduced = partials.reduce_by_key(Arc::new(ModPartitioner::new(n_parts)), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        let mut out = vec![0.0; self.num_vertices];
        for (gr, seg) in reduced.collect()? {
            let base = gr as usize * self.block_size;
            out[base..base + seg.len()].copy_from_slice(&seg);
        }
        Ok(out)
    }

    /// Distinct out-degree of every vertex: the column population counts
    /// of `A'`. Because the bitmask stores each edge once, this is the
    /// degree vector consistent with the structure matrix even when the
    /// input edge list contains duplicates.
    pub fn col_counts(&self) -> Result<Vec<u64>, JobError> {
        let bs = self.block_size;
        let grid = self.grid as u64;
        let n = self.num_vertices;
        let counts = self.rdd.run_partitions(move |_, blocks| {
            let mut local: Vec<(u64, Vec<u64>)> = Vec::new();
            for (block_id, block) in blocks {
                let gr = (block_id % grid) as usize;
                let gc = (block_id / grid) as usize;
                let rows = bs.min(n - gr * bs);
                let cols = bs.min(n - gc * bs);
                let mut acc = vec![0u64; cols];
                block.for_each_edge(|local_off| {
                    acc[local_off / rows] += 1;
                });
                local.push((gc as u64, acc));
            }
            local
        })?;
        let mut out = vec![0u64; self.num_vertices];
        for part in counts {
            for (gc, acc) in part {
                let base = gc as usize * self.block_size;
                for (j, c) in acc.iter().enumerate() {
                    out[base + j] += c;
                }
            }
        }
        Ok(out)
    }

    fn context(&self) -> SpangleContext {
        self.rdd.context().clone()
    }
}

/// Outcome of a PageRank run, including the paper's per-step timing
/// (Fig. 11 reports both end-to-end and per-iteration times).
pub struct PageRankResult {
    /// Final rank vector (sums to ~1 with no dangling mass correction).
    pub ranks: DenseVector,
    /// Wall time of every iteration.
    pub iteration_times: Vec<Duration>,
    /// Wall time of matrix construction (graph → adjacency blocks).
    pub build_time: Duration,
}

/// Runs the customised PageRank of §VI-B on `graph`.
pub fn pagerank(
    graph: &Graph,
    block_size: usize,
    super_sparse: bool,
    alpha: f64,
    iterations: usize,
) -> Result<PageRankResult, JobError> {
    let n = graph.num_vertices();
    let t0 = Instant::now();
    let adj = AdjacencyMatrix::from_graph(graph, block_size, super_sparse)?;
    // Materialise the blocks (they are persisted).
    adj.rdd().count()?;
    // w = 1/outdeg over *distinct* out-edges (the bitmask stores each edge
    // once); 0 for dangling vertices.
    let w: Vec<f64> = adj
        .col_counts()?
        .into_iter()
        .map(|d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
        .collect();
    let build_time = t0.elapsed();

    let mut p = vec![1.0 / n as f64; n];
    let mut iteration_times = Vec::with_capacity(iterations);
    let teleport = (1.0 - alpha) / n as f64;
    for _ in 0..iterations {
        let t = Instant::now();
        // q = w ∘ p on the driver (both vectors are |V|-sized).
        let q: Vec<f64> = w.iter().zip(&p).map(|(w, p)| w * p).collect();
        let y = adj.matvec(&q)?;
        for (pi, yi) in p.iter_mut().zip(&y) {
            *pi = alpha * yi + teleport;
        }
        iteration_times.push(t.elapsed());
    }
    Ok(PageRankResult {
        ranks: DenseVector::column(p),
        iteration_times,
        build_time,
    })
}

/// Reference single-machine PageRank over an explicit edge list, for
/// correctness checks. Duplicate edges are collapsed, matching the 0/1
/// connectivity-matrix semantics of §VI-B.
pub fn pagerank_reference(
    num_vertices: usize,
    edges: &[(u64, u64)],
    alpha: f64,
    iterations: usize,
) -> Vec<f64> {
    let n = num_vertices;
    let edges: Vec<(u64, u64)> = edges
        .iter()
        .copied()
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    let mut outdeg = vec![0u64; n];
    for &(s, _) in &edges {
        outdeg[s as usize] += 1;
    }
    let mut p = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - alpha) / n as f64; n];
        for &(s, d) in &edges {
            next[d as usize] += alpha * p[s as usize] / outdeg[s as usize] as f64;
        }
        p = next;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond(ctx: &SpangleContext) -> Graph {
        // 0 -> {1,2}, 1 -> 3, 2 -> 3, 3 -> 0.
        Graph::from_edges(ctx, 4, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)], 2)
    }

    #[test]
    fn adjacency_blocks_store_every_edge_once() {
        let ctx = SpangleContext::new(2);
        let g = diamond(&ctx);
        let adj = AdjacencyMatrix::from_graph(&g, 2, false).unwrap();
        let total: usize = adj
            .rdd()
            .aggregate(0usize, |acc, (_, b)| acc + b.num_edges(), |a, b| a + b)
            .unwrap();
        assert_eq!(total, 5);
    }

    #[test]
    fn mask_matvec_matches_dense_reference() {
        let ctx = SpangleContext::new(2);
        let edges = vec![(0u64, 1u64), (0, 2), (1, 3), (2, 3), (3, 0), (3, 1)];
        let g = Graph::from_edges(&ctx, 5, edges.clone(), 2);
        let adj = AdjacencyMatrix::from_graph(&g, 2, false).unwrap();
        let q: Vec<f64> = (0..5).map(|i| (i + 1) as f64).collect();
        let got = adj.matvec(&q).unwrap();
        let mut expected = vec![0.0; 5];
        for (s, d) in edges {
            expected[d as usize] += q[s as usize];
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn pagerank_matches_reference_on_small_graph() {
        let ctx = SpangleContext::new(2);
        let edges = vec![(0u64, 1u64), (0, 2), (1, 3), (2, 3), (3, 0)];
        let g = Graph::from_edges(&ctx, 4, edges.clone(), 2);
        for super_sparse in [false, true] {
            let result = pagerank(&g, 2, super_sparse, 0.85, 20).unwrap();
            let expected = pagerank_reference(4, &edges, 0.85, 20);
            for (i, (a, b)) in result.ranks.as_slice().iter().zip(&expected).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "vertex {i} (super_sparse={super_sparse}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn pagerank_matches_reference_on_power_law_graph() {
        let ctx = SpangleContext::new(4);
        let g = Graph::power_law(&ctx, 300, 3000, 11, 4);
        let edges = g.edges().collect().unwrap();
        let result = pagerank(&g, 64, false, 0.85, 10).unwrap();
        let expected = pagerank_reference(300, &edges, 0.85, 10);
        for (i, (a, b)) in result.ranks.as_slice().iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {i}: {a} vs {b}");
        }
        assert_eq!(result.iteration_times.len(), 10);
    }

    #[test]
    fn bitmask_blocks_beat_payload_blocks_on_memory() {
        let ctx = SpangleContext::new(2);
        // ~3% density: the regime where the paper keeps flat masks
        // (1 bit/cell beats 8 B/edge above ~1.6% density).
        let g = Graph::power_law(&ctx, 4096, 500_000, 5, 4);
        let adj = AdjacencyMatrix::from_graph(&g, 512, false).unwrap();
        let mask_bytes = adj.mem_bytes().unwrap();
        let edges = g.num_edges().unwrap();
        assert!(
            mask_bytes < edges * 8,
            "bitmask blocks ({mask_bytes} B) should undercut 8 B/edge ({} B)",
            edges * 8
        );
    }

    #[test]
    fn hierarchical_blocks_shrink_super_sparse_graphs() {
        let ctx = SpangleContext::new(2);
        // 16k vertices, only 2k edges: blocks are overwhelmingly empty.
        let g = Graph::power_law(&ctx, 16_384, 2_000, 9, 4);
        let flat = AdjacencyMatrix::from_graph(&g, 2048, false)
            .unwrap()
            .mem_bytes()
            .unwrap();
        let hier = AdjacencyMatrix::from_graph(&g, 2048, true)
            .unwrap()
            .mem_bytes()
            .unwrap();
        assert!(
            hier * 2 < flat,
            "hierarchical masks ({hier} B) should at least halve flat masks ({flat} B)"
        );
    }
}
