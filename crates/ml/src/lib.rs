#![warn(missing_docs)]

//! Machine learning tailored for Spangle (paper §VI).
//!
//! * [`graph`] — graphs as edge sets plus a deterministic power-law
//!   (R-MAT-style) generator standing in for the SNAP datasets of
//!   Table IIb;
//! * [`mod@pagerank`] — the customised PageRank of §VI-B: the transition
//!   matrix is decomposed as `A = A' ∘ w` so the 0/1 structure matrix `A'`
//!   lives in *bitmask-only* adjacency blocks (one bit per edge; the
//!   hierarchical mask for super-sparse graphs) and the power iteration is
//!   `p ← α·A'(w ∘ p) + (1-α)/n`;
//! * [`sgd`] — the parallel mini-batch SGD of §VI-C with the Eq. 2 chunk
//!   numbering (`Cn = nP·rID + pID`, reversed for shuffle-free sampling)
//!   and the opt₁ (reformulated gradient, Eq. 3) / opt₂ (metadata
//!   transpose) optimisation levels ablated in Fig. 12b;
//! * [`datasets`] — synthetic classification data scaled after Table IIc.

pub mod datasets;
pub mod graph;
pub mod pagerank;
pub mod sgd;

pub use graph::Graph;
pub use pagerank::{pagerank, AdjacencyMatrix, PageRankResult};
pub use sgd::{LogisticRegression, OptLevel, SgdConfig, TrainSet};
