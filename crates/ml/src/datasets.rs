//! Synthetic classification datasets scaled after Table IIc.
//!
//! The paper trains on URL Reputation (2.4M rows × 3.2M features), KDD Cup
//! 2010 (8.9M × 20M) and KDD Cup 2012 (150M × 55M) — all hyper-sparse
//! binary-classification matrices. Those datasets are not redistributable
//! here, so this module generates linearly-separable-with-noise problems
//! with the same *shape class* (many rows, many features, a handful of
//! non-zeros per row), scaled to laptop memory.

use crate::graph::mix;
use crate::sgd::{SparseRow, TrainSet};
use spangle_dataflow::SpangleContext;

/// Generates a synthetic logistic-regression training set.
///
/// Each row has `nnz_per_row` non-zeros at hashed feature positions with
/// values in `[-1, 1]`; the label is the sign of the margin against a
/// hidden weight vector, with ~3% deterministic label noise.
pub fn synthetic_logreg(
    ctx: &SpangleContext,
    num_partitions: usize,
    chunks_per_partition: usize,
    rows_per_chunk: usize,
    num_features: usize,
    nnz_per_row: usize,
    seed: u64,
) -> TrainSet {
    assert!(nnz_per_row <= num_features, "row denser than the space");
    TrainSet::generate(
        ctx,
        num_partitions,
        chunks_per_partition,
        rows_per_chunk,
        num_features,
        move |global_row| generate_row(global_row, num_features, nnz_per_row, seed),
    )
}

/// The hidden ground-truth weight of feature `j`: a fixed alternating
/// pattern so train/test splits share the same concept.
fn true_weight(j: u32, seed: u64) -> f64 {
    let h = mix(seed ^ 0xABCD ^ j as u64);
    ((h % 2001) as f64 / 1000.0) - 1.0
}

fn generate_row(
    global_row: u64,
    num_features: usize,
    nnz_per_row: usize,
    seed: u64,
) -> (SparseRow, f64) {
    let mut row: SparseRow = Vec::with_capacity(nnz_per_row);
    let mut margin = 0.0;
    let mut cursor = mix(seed ^ global_row.wrapping_mul(0x51ED2701));
    let mut used = std::collections::HashSet::with_capacity(nnz_per_row);
    while row.len() < nnz_per_row {
        cursor = mix(cursor);
        let j = (cursor % num_features as u64) as u32;
        if !used.insert(j) {
            continue;
        }
        cursor = mix(cursor);
        let v = ((cursor % 2001) as f64 / 1000.0) - 1.0;
        margin += v * true_weight(j, seed);
        row.push((j, v));
    }
    row.sort_unstable_by_key(|&(j, _)| j);
    // ~3% label noise, deterministically.
    let noisy = mix(seed ^ global_row ^ 0xF00D) % 100 < 3;
    let clean_label = if margin >= 0.0 { 1.0 } else { 0.0 };
    let label = if noisy {
        1.0 - clean_label
    } else {
        clean_label
    };
    (row, label)
}

/// Scaled stand-ins for the three Table IIc datasets: `(name,
/// partitions → (chunks/partition, rows/chunk, features, nnz/row))`
/// chosen so relative sizes follow the paper (URL < KDD10 < KDD12).
pub struct DatasetSpec {
    /// Human-readable dataset label.
    pub name: &'static str,
    /// Chunks generated per partition (Eq. 2's rID range).
    pub chunks_per_partition: usize,
    /// Samples per chunk.
    pub rows_per_chunk: usize,
    /// Feature-space dimensionality.
    pub num_features: usize,
    /// Non-zeros per sample row.
    pub nnz_per_row: usize,
    /// Generator seed.
    pub seed: u64,
}

const fn spec_seed(n: u64) -> u64 {
    0x5EED_0000 + n
}

/// URL-Reputation-like: the smallest of the three.
pub const URL_LIKE: DatasetSpec = DatasetSpec {
    name: "url-like",
    chunks_per_partition: 8,
    rows_per_chunk: 256,
    num_features: 4096,
    nnz_per_row: 16,
    seed: spec_seed(1),
};

/// KDD-Cup-2010-like: ~4× the rows and features of URL-like.
pub const KDD10_LIKE: DatasetSpec = DatasetSpec {
    name: "kdd10-like",
    chunks_per_partition: 16,
    rows_per_chunk: 512,
    num_features: 16384,
    nnz_per_row: 12,
    seed: spec_seed(2),
};

/// KDD-Cup-2012-like: the largest.
pub const KDD12_LIKE: DatasetSpec = DatasetSpec {
    name: "kdd12-like",
    chunks_per_partition: 32,
    rows_per_chunk: 1024,
    num_features: 32768,
    nnz_per_row: 8,
    seed: spec_seed(3),
};

/// Instantiates a spec on a cluster.
pub fn from_spec(ctx: &SpangleContext, spec: &DatasetSpec, num_partitions: usize) -> TrainSet {
    synthetic_logreg(
        ctx,
        num_partitions,
        spec.chunks_per_partition,
        spec.rows_per_chunk,
        spec.num_features,
        spec.nnz_per_row,
        spec.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sparse_sorted_and_deterministic() {
        let (row_a, label_a) = generate_row(17, 1000, 8, 5);
        let (row_b, label_b) = generate_row(17, 1000, 8, 5);
        assert_eq!(row_a, row_b);
        assert_eq!(label_a, label_b);
        assert_eq!(row_a.len(), 8);
        for pair in row_a.windows(2) {
            assert!(pair[0].0 < pair[1].0, "indices sorted and unique");
        }
    }

    #[test]
    fn labels_roughly_balanced() {
        let (ones, total) = (0..2000u64).fold((0, 0), |(ones, total), r| {
            let (_, label) = generate_row(r, 4096, 16, 9);
            (ones + label as usize, total + 1)
        });
        assert!(
            (total / 4..3 * total / 4).contains(&ones),
            "labels should be roughly balanced: {ones}/{total}"
        );
    }
}
