//! Parallel mini-batch SGD for logistic regression (paper §VI-C).
//!
//! Training data lives in row-block chunks whose IDs follow Eq. 2,
//! `Cn = nP · rID + pID`: partition `pID` *generates* its own chunk IDs in
//! parallel, and at every step it samples chunks by drawing `rID`s and
//! evaluating the equation in reverse — no shuffle ever touches the
//! training matrix. Each step computes the logistic-regression update
//!
//! ```text
//! x ← x − θ · ((h(M_t·x) − y_t)ᵀ M_t)ᵀ          (Eq. 3)
//! ```
//!
//! in one of three optimisation levels (the Fig. 12b ablation):
//!
//! * [`OptLevel::None`] — the textbook `Mᵀ(h(Mx) − y)`: the sampled block
//!   is physically transposed every step;
//! * [`OptLevel::Opt1`] — Eq. 3's reformulation: accumulate `errᵀM` row by
//!   row, then physically transpose the (small) result vector;
//! * [`OptLevel::Opt1Opt2`] — additionally replace the vector transpose by
//!   a metadata flip ([`DenseVector::transpose`]).

use crate::graph::mix;
use spangle_dataflow::rdd::sources::GeneratedRdd;
use spangle_dataflow::{JobError, MemSize, ModPartitioner, Partitioner, Rdd, SpangleContext};
use spangle_linalg::DenseVector;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One sample's features: sorted `(feature index, value)` pairs.
pub type SparseRow = Vec<(u32, f64)>;

/// A chunk of training samples: a row block of the matrix `M` plus the
/// label segment of `y` (Fig. 6).
#[derive(Clone, Debug)]
pub struct SampleBlock {
    /// Feature rows.
    pub rows: Vec<SparseRow>,
    /// Labels in `{0, 1}`, aligned with `rows`.
    pub labels: Vec<f64>,
}

impl MemSize for SampleBlock {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.rows.mem_size() + self.labels.mem_size()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.rows.spill_encode(out);
        self.labels.spill_encode(out);
    }

    fn spill_decode(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Self> {
        Some(SampleBlock {
            rows: Vec::spill_decode(input)?,
            labels: Vec::spill_decode(input)?,
        })
    }
}

/// A distributed training set in Eq. 2 layout.
pub struct TrainSet {
    ctx: SpangleContext,
    num_features: usize,
    num_partitions: usize,
    chunks_per_partition: usize,
    rows_per_chunk: usize,
    rdd: Rdd<(u64, SampleBlock)>,
}

impl TrainSet {
    /// Generates a training set of
    /// `num_partitions × chunks_per_partition × rows_per_chunk` samples.
    /// `row_gen(global_row)` must be deterministic — it is the lineage.
    pub fn generate(
        ctx: &SpangleContext,
        num_partitions: usize,
        chunks_per_partition: usize,
        rows_per_chunk: usize,
        num_features: usize,
        row_gen: impl Fn(u64) -> (SparseRow, f64) + Send + Sync + 'static,
    ) -> Self {
        let n_p = num_partitions as u64;
        let rpc = rows_per_chunk as u64;
        let rdd = GeneratedRdd::create(ctx, num_partitions, move |p| {
            let mut out = Vec::with_capacity(chunks_per_partition);
            for r_id in 0..chunks_per_partition as u64 {
                // Eq. 2: Cn = nP · rID + pID.
                let c_n = n_p * r_id + p as u64;
                let mut rows = Vec::with_capacity(rows_per_chunk);
                let mut labels = Vec::with_capacity(rows_per_chunk);
                for k in 0..rpc {
                    let (row, label) = row_gen(c_n * rpc + k);
                    rows.push(row);
                    labels.push(label);
                }
                out.push((c_n, SampleBlock { rows, labels }));
            }
            out
        });
        // Eq. 2 numbering IS the mod layout: Cn mod nP == pID.
        let rdd = rdd.assert_partitioned(ModPartitioner::new(num_partitions).sig());
        TrainSet {
            ctx: ctx.clone(),
            num_features,
            num_partitions,
            chunks_per_partition,
            rows_per_chunk,
            rdd,
        }
    }

    /// Number of feature dimensions.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total number of samples.
    pub fn num_rows(&self) -> usize {
        self.num_partitions * self.chunks_per_partition * self.rows_per_chunk
    }

    /// Number of partitions (the `nP` of Eq. 2).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The chunk RDD.
    pub fn rdd(&self) -> &Rdd<(u64, SampleBlock)> {
        &self.rdd
    }

    /// Marks the chunks for caching (training iterates over them).
    pub fn persist(&self) -> &Self {
        self.rdd.persist();
        self
    }

    /// Flattens into a per-sample RDD `(label, row)` — the layout the
    /// MLlib-style baseline trains on.
    pub fn to_row_rdd(&self) -> Rdd<(f64, SparseRow)> {
        self.rdd.flat_map(|(_, block)| {
            block
                .labels
                .iter()
                .zip(&block.rows)
                .map(|(&l, r)| (l, r.clone()))
                .collect()
        })
    }

    /// Fraction of rows classified correctly by `weights`.
    pub fn accuracy(&self, weights: &DenseVector) -> Result<f64, JobError> {
        let bc = self.ctx.broadcast(weights.as_slice().to_vec());
        let stats = self.rdd.run_partitions(move |_, blocks| {
            let w = bc.value();
            let mut correct = 0usize;
            let mut total = 0usize;
            for (_, block) in blocks {
                for (row, &label) in block.rows.iter().zip(&block.labels) {
                    let margin: f64 = row.iter().map(|&(j, v)| w[j as usize] * v).sum();
                    let predicted = if sigmoid(margin) >= 0.5 { 1.0 } else { 0.0 };
                    if predicted == label {
                        correct += 1;
                    }
                    total += 1;
                }
            }
            (correct, total)
        })?;
        let (correct, total) = stats
            .into_iter()
            .fold((0, 0), |(c, t), (dc, dt)| (c + dc, t + dt));
        Ok(if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        })
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Which of the §VI-C optimisations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// Textbook gradient with a physical block transpose per step.
    None,
    /// Eq. 3 reformulation; result vector still physically transposed.
    Opt1,
    /// Eq. 3 plus metadata-only vector transpose.
    Opt1Opt2,
}

/// SGD hyper-parameters (defaults follow §VII-C: step 0.6, tol 1e-4).
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Step size θ.
    pub step_size: f64,
    /// Stop when the L2 norm of the update drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Chunks sampled per partition per step (the mini-batch parameter α).
    pub batch_chunks: usize,
    /// Optimisation level (Fig. 12b).
    pub opt: OptLevel,
    /// RNG seed for batch sampling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            step_size: 0.6,
            tolerance: 1e-4,
            max_iters: 200,
            batch_chunks: 1,
            opt: OptLevel::Opt1Opt2,
            seed: 42,
        }
    }
}

/// A trained logistic-regression model plus training telemetry.
pub struct LogisticRegression {
    /// Learned weights (column orientation).
    pub weights: DenseVector,
    /// Iterations actually run.
    pub iterations: usize,
    /// Total training wall time.
    pub training_time: Duration,
}

impl LogisticRegression {
    /// Trains on `data` with `config` using the parallel SGD of §VI-C.
    pub fn train(data: &TrainSet, config: SgdConfig) -> Result<Self, JobError> {
        let f = data.num_features();
        let ctx = data.ctx.clone();
        let mut x = vec![0.0f64; f];
        let started = Instant::now();
        let mut iterations = 0usize;

        for t in 0..config.max_iters {
            iterations = t + 1;
            let bc = ctx.broadcast(x.clone());
            let cpp = data.chunks_per_partition;
            let n_p = data.num_partitions as u64;
            let batch = config.batch_chunks.min(cpp);
            let opt = config.opt;
            let seed = config.seed;
            let num_features = f;
            let partials = data.rdd.run_partitions(move |p, blocks| {
                // Reverse Eq. 2: draw rIDs, recover this partition's chunk
                // IDs, and look the chunks up locally.
                let by_id: HashMap<u64, &SampleBlock> =
                    blocks.iter().map(|(id, b)| (*id, b)).collect();
                let mut chosen = Vec::with_capacity(batch);
                let mut cursor = mix(seed ^ ((t as u64) << 32) ^ p as u64);
                while chosen.len() < batch {
                    cursor = mix(cursor);
                    let r_id = cursor % cpp as u64;
                    let c_n = n_p * r_id + p as u64;
                    if !chosen.contains(&c_n) {
                        chosen.push(c_n);
                    }
                }
                let x = bc.value();
                let mut grad = vec![0.0f64; num_features];
                let mut count = 0usize;
                for c_n in chosen {
                    let block = by_id
                        .get(&c_n)
                        .expect("Eq. 2 reversal must land on a local chunk");
                    accumulate_gradient(block, x, opt, &mut grad);
                    count += block.rows.len();
                }
                (grad, count)
            })?;

            let mut grad = vec![0.0f64; f];
            let mut total = 0usize;
            for (g, c) in partials {
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b;
                }
                total += c;
            }
            if total == 0 {
                break;
            }
            let scale = config.step_size / total as f64;
            let mut norm2 = 0.0;
            for (xi, gi) in x.iter_mut().zip(&grad) {
                let delta = scale * gi;
                *xi -= delta;
                norm2 += delta * delta;
            }
            if norm2.sqrt() < config.tolerance {
                break;
            }
        }

        Ok(LogisticRegression {
            weights: DenseVector::column(x),
            iterations,
            training_time: started.elapsed(),
        })
    }
}

/// Adds one block's gradient contribution into `grad`, through the code
/// path selected by `opt`. All three paths compute the same value; they
/// differ in how much data movement the transpose costs.
fn accumulate_gradient(block: &SampleBlock, x: &[f64], opt: OptLevel, grad: &mut [f64]) {
    let errs: Vec<f64> = block
        .rows
        .iter()
        .zip(&block.labels)
        .map(|(row, &y)| {
            let margin: f64 = row.iter().map(|&(j, v)| x[j as usize] * v).sum();
            sigmoid(margin) - y
        })
        .collect();

    match opt {
        OptLevel::None => {
            // Physically transpose the sampled block: materialise Mᵀ as a
            // column-major triplet list (gather + sort, the real cost of a
            // sparse transpose), then contract it against err.
            let mut transposed: Vec<(u32, u32, f64)> = Vec::new();
            for (r, row) in block.rows.iter().enumerate() {
                for &(j, v) in row {
                    transposed.push((j, r as u32, v));
                }
            }
            transposed.sort_unstable_by_key(|&(j, r, _)| (j, r));
            for (j, r, v) in transposed {
                grad[j as usize] += errs[r as usize] * v;
            }
        }
        OptLevel::Opt1 | OptLevel::Opt1Opt2 => {
            // Eq. 3: accumulate errᵀM row by row — no block transpose.
            let mut partial = DenseVector::row(vec![0.0; grad.len()]);
            {
                let buf = partial.as_mut_slice();
                for (row, &e) in block.rows.iter().zip(&errs) {
                    for &(j, v) in row {
                        buf[j as usize] += e * v;
                    }
                }
            }
            // The result is a row vector; Eq. 3 transposes it back.
            let partial = match opt {
                OptLevel::Opt1 => partial.transpose_physical(),
                _ => partial.transpose(),
            };
            for (g, p) in grad.iter_mut().zip(partial.as_slice()) {
                *g += p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn eq2_numbering_is_unique_and_mod_partitioned() {
        let ctx = SpangleContext::new(3);
        let data = TrainSet::generate(&ctx, 3, 4, 5, 8, |r| (vec![(0, r as f64)], 0.0));
        let ids: Vec<u64> = data.rdd().map(|(id, _)| id).collect().unwrap();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "12 unique chunk ids");
        // Every chunk sits on partition id % nP.
        let placed: Vec<(usize, Vec<u64>)> = data
            .rdd()
            .run_partitions(|p, blocks| (p, blocks.iter().map(|(id, _)| *id).collect()))
            .unwrap();
        for (p, ids) in placed {
            for id in ids {
                assert_eq!(id % 3, p as u64, "Eq. 2: Cn mod nP == pID");
            }
        }
    }

    #[test]
    fn global_rows_cover_the_dataset_exactly_once() {
        let ctx = SpangleContext::new(2);
        let data = TrainSet::generate(&ctx, 2, 3, 4, 4, |r| (vec![(0, r as f64)], 1.0));
        assert_eq!(data.num_rows(), 24);
        let mut seen: Vec<u64> = data
            .rdd()
            .flat_map(|(_, b)| b.rows.iter().map(|r| r[0].1 as u64).collect())
            .collect()
            .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn all_opt_levels_learn_a_separable_problem() {
        let ctx = SpangleContext::new(4);
        let data = datasets::synthetic_logreg(&ctx, 4, 4, 64, 32, 5, 99);
        data.persist();
        for opt in [OptLevel::None, OptLevel::Opt1, OptLevel::Opt1Opt2] {
            let model = LogisticRegression::train(
                &data,
                SgdConfig {
                    max_iters: 120,
                    batch_chunks: 2,
                    opt,
                    ..SgdConfig::default()
                },
            )
            .unwrap();
            let acc = data.accuracy(&model.weights).unwrap();
            assert!(acc > 0.9, "opt={opt:?}: accuracy {acc}");
        }
    }

    #[test]
    fn opt_levels_agree_on_the_gradient() {
        let block = SampleBlock {
            rows: vec![
                vec![(0, 1.0), (2, -2.0)],
                vec![(1, 0.5)],
                vec![(0, -1.0), (3, 3.0)],
            ],
            labels: vec![1.0, 0.0, 1.0],
        };
        let x = vec![0.1, -0.2, 0.3, 0.0];
        let mut reference = vec![0.0; 4];
        accumulate_gradient(&block, &x, OptLevel::None, &mut reference);
        for opt in [OptLevel::Opt1, OptLevel::Opt1Opt2] {
            let mut got = vec![0.0; 4];
            accumulate_gradient(&block, &x, opt, &mut got);
            for (a, b) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12, "opt={opt:?}");
            }
        }
    }

    #[test]
    fn training_never_shuffles_the_training_matrix() {
        let ctx = SpangleContext::new(4);
        let data = datasets::synthetic_logreg(&ctx, 4, 2, 32, 16, 4, 7);
        data.persist();
        data.rdd().count().unwrap(); // materialise the cache
        let before = ctx.metrics_snapshot();
        LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: 10,
                ..SgdConfig::default()
            },
        )
        .unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(
            delta.shuffle_write_bytes, 0,
            "Eq. 2 sampling must be shuffle-free"
        );
    }
}
