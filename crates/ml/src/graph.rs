//! Graphs as distributed edge sets, plus a power-law generator.
//!
//! The paper evaluates PageRank on SNAP graphs (Enron, Epinions,
//! LiveJournal, Twitter). Those exact datasets are not redistributable
//! here, so [`Graph::power_law`] generates R-MAT-style graphs with the same
//! |V|/|E| ratios and a heavy-tailed degree distribution — the properties
//! the experiment actually exercises.

use spangle_dataflow::rdd::sources::GeneratedRdd;
use spangle_dataflow::{Rdd, SpangleContext};

/// A directed graph: a vertex count and a distributed edge list
/// `(src, dst)`.
pub struct Graph {
    num_vertices: usize,
    edges: Rdd<(u64, u64)>,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            num_vertices: self.num_vertices,
            edges: self.edges.clone(),
        }
    }
}

/// Split-mix style hash; deterministic edge generation.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Graph {
    /// Wraps an existing edge RDD.
    pub fn new(num_vertices: usize, edges: Rdd<(u64, u64)>) -> Self {
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Builds from a driver-local edge list.
    pub fn from_edges(
        ctx: &SpangleContext,
        num_vertices: usize,
        edges: Vec<(u64, u64)>,
        num_partitions: usize,
    ) -> Self {
        Graph {
            num_vertices,
            edges: ctx.parallelize(edges, num_partitions),
        }
    }

    /// Generates a deterministic R-MAT-style power-law graph with
    /// `num_edges` directed edges over `num_vertices` vertices. Edges are
    /// generated on the executors, so the driver never holds the graph.
    pub fn power_law(
        ctx: &SpangleContext,
        num_vertices: usize,
        num_edges: usize,
        seed: u64,
        num_partitions: usize,
    ) -> Self {
        assert!(num_vertices > 1, "need at least two vertices");
        let levels = (usize::BITS - (num_vertices - 1).leading_zeros()) as usize;
        let edges = GeneratedRdd::create(ctx, num_partitions, move |p| {
            let lo = p * num_edges / num_partitions;
            let hi = (p + 1) * num_edges / num_partitions;
            let mut out = Vec::with_capacity(hi - lo);
            for e in lo..hi {
                // R-MAT quadrant recursion with (a,b,c,d) ≈
                // (0.57, 0.19, 0.19, 0.05).
                let mut src = 0u64;
                let mut dst = 0u64;
                for level in 0..levels {
                    let r = mix(seed ^ ((e as u64) << 20) ^ (level as u64)) % 100;
                    let (sbit, dbit) = if r < 57 {
                        (0, 0)
                    } else if r < 76 {
                        (0, 1)
                    } else if r < 95 {
                        (1, 0)
                    } else {
                        (1, 1)
                    };
                    src = (src << 1) | sbit;
                    dst = (dst << 1) | dbit;
                }
                src %= num_vertices as u64;
                dst %= num_vertices as u64;
                out.push((src, dst));
            }
            out
        });
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The distributed edge list.
    pub fn edges(&self) -> &Rdd<(u64, u64)> {
        &self.edges
    }

    /// Number of edges (an action).
    pub fn num_edges(&self) -> Result<usize, spangle_dataflow::JobError> {
        self.edges.count()
    }

    /// Out-degree of every vertex, gathered on the driver (a `|V|`-sized
    /// vector, like the paper's `w` vector).
    pub fn out_degrees(&self) -> Result<Vec<u64>, spangle_dataflow::JobError> {
        let counts = self.edges.run_partitions(|_, edges| {
            let mut local = std::collections::HashMap::<u64, u64>::new();
            for (src, _) in edges {
                *local.entry(*src).or_insert(0) += 1;
            }
            local.into_iter().collect::<Vec<_>>()
        })?;
        let mut out = vec![0u64; self.num_vertices];
        for part in counts {
            for (v, c) in part {
                out[v as usize] += c;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_generates_the_requested_edge_count() {
        let ctx = SpangleContext::new(2);
        let g = Graph::power_law(&ctx, 1000, 5000, 42, 4);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges().unwrap(), 5000);
    }

    #[test]
    fn power_law_is_deterministic() {
        let ctx = SpangleContext::new(2);
        let a = Graph::power_law(&ctx, 500, 2000, 7, 4)
            .edges()
            .collect()
            .unwrap();
        let b = Graph::power_law(&ctx, 500, 2000, 7, 4)
            .edges()
            .collect()
            .unwrap();
        assert_eq!(a, b);
        let c = Graph::power_law(&ctx, 500, 2000, 8, 4)
            .edges()
            .collect()
            .unwrap();
        assert_ne!(a, c, "different seeds give different graphs");
    }

    #[test]
    fn power_law_degrees_are_heavy_tailed() {
        let ctx = SpangleContext::new(2);
        let g = Graph::power_law(&ctx, 2048, 40_000, 3, 4);
        let mut degs = g.out_degrees().unwrap();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degs.iter().sum();
        let top_decile: u64 = degs[..205].iter().sum();
        assert!(
            top_decile * 100 > total * 35,
            "top 10% of vertices should own well over a third of the edges \
             ({top_decile}/{total})"
        );
    }

    #[test]
    fn out_degrees_match_edge_list() {
        let ctx = SpangleContext::new(2);
        let g = Graph::from_edges(&ctx, 4, vec![(0, 1), (0, 2), (1, 0), (3, 3)], 2);
        assert_eq!(g.out_degrees().unwrap(), vec![2, 1, 0, 1]);
    }
}
