//! Extended ML tests: PageRank invariants and SGD determinism.

use spangle_dataflow::SpangleContext;
use spangle_ml::pagerank::pagerank_reference;
use spangle_ml::{datasets, pagerank, Graph, LogisticRegression, SgdConfig};

#[test]
fn pagerank_mass_is_conserved_without_dangling_vertices() {
    let ctx = SpangleContext::new(2);
    // A ring: every vertex has exactly one out-edge, so no rank mass
    // leaks and the distribution stays uniform.
    let n = 64;
    let ring: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
    let g = Graph::from_edges(&ctx, n, ring, 2);
    let result = pagerank(&g, 16, false, 0.85, 25).unwrap();
    let sum: f64 = result.ranks.as_slice().iter().sum();
    assert!((sum - 1.0).abs() < 1e-12, "rank mass {sum}");
    for &r in result.ranks.as_slice() {
        assert!((r - 1.0 / n as f64).abs() < 1e-12, "uniform on a ring");
    }
}

#[test]
fn damping_zero_gives_the_uniform_distribution() {
    let ctx = SpangleContext::new(2);
    let g = Graph::power_law(&ctx, 128, 1000, 3, 2);
    let result = pagerank(&g, 32, false, 0.0, 5).unwrap();
    for &r in result.ranks.as_slice() {
        assert!((r - 1.0 / 128.0).abs() < 1e-15);
    }
}

#[test]
fn duplicate_edges_do_not_change_the_result() {
    let ctx = SpangleContext::new(2);
    let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (0, 2)];
    let mut doubled = edges.clone();
    doubled.extend_from_slice(&edges);
    let clean = pagerank(&Graph::from_edges(&ctx, 3, edges, 2), 2, false, 0.85, 15).unwrap();
    let dup = pagerank(&Graph::from_edges(&ctx, 3, doubled, 2), 2, false, 0.85, 15).unwrap();
    for (a, b) in clean.ranks.as_slice().iter().zip(dup.ranks.as_slice()) {
        assert!(
            (a - b).abs() < 1e-15,
            "bitmask semantics collapse duplicates"
        );
    }
}

#[test]
fn sgd_training_is_deterministic_for_a_fixed_seed() {
    let ctx = SpangleContext::new(3);
    let data = datasets::synthetic_logreg(&ctx, 3, 4, 32, 128, 6, 1);
    data.persist();
    let cfg = SgdConfig {
        max_iters: 30,
        tolerance: 0.0,
        batch_chunks: 2,
        seed: 777,
        ..SgdConfig::default()
    };
    let a = LogisticRegression::train(&data, cfg).unwrap();
    let b = LogisticRegression::train(&data, cfg).unwrap();
    assert_eq!(a.weights.as_slice(), b.weights.as_slice());
    // A different sampling seed changes the trajectory.
    let c = LogisticRegression::train(&data, SgdConfig { seed: 778, ..cfg }).unwrap();
    assert_ne!(a.weights.as_slice(), c.weights.as_slice());
}

#[test]
fn sgd_tolerance_stops_early() {
    let ctx = SpangleContext::new(2);
    let data = datasets::synthetic_logreg(&ctx, 2, 2, 32, 64, 4, 5);
    data.persist();
    let loose = LogisticRegression::train(
        &data,
        SgdConfig {
            max_iters: 500,
            tolerance: 1e-1,
            ..SgdConfig::default()
        },
    )
    .unwrap();
    assert!(
        loose.iterations < 500,
        "a loose tolerance must stop early ({} iterations)",
        loose.iterations
    );
}

/// Distributed PageRank equals the sequential reference on random graphs,
/// in both mask modes.
#[test]
fn pagerank_matches_reference_on_random_graphs() {
    spangle_testkit::run_cases(0x3117_0001, 10, |rng| {
        let n = rng.usize_in(8..80);
        let edges: Vec<(u64, u64)> =
            rng.vec_of(5..120, |r| (r.u64_in(0..n as u64), r.u64_in(0..n as u64)));
        let super_sparse = rng.bool();
        let ctx = SpangleContext::new(2);
        let g = Graph::from_edges(&ctx, n, edges.clone(), 2);
        let got = pagerank(&g, 16, super_sparse, 0.85, 8).unwrap();
        let expected = pagerank_reference(n, &edges, 0.85, 8);
        for (v, (a, b)) in got.ranks.as_slice().iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-12, "vertex {}: {} vs {}", v, a, b);
        }
    });
}
